"""Durability: a write-ahead delta log plus periodic database snapshots.

A :class:`DeltaLog` owns one view's state directory::

    <dir>/
      meta.json              format, view name, semantics, carrier,
                             schema {relation: arity}, snapshot_seq
      program.dl             the registered program text
      snapshot-<SEQ>/        the database at commit SEQ:
                             <relation>.csv per relation (csvio format)
                             + @universe.csv (the full universe, which
                             can exceed the active domain)
      wal/<SEQ>/             one committed batch per directory, in the
                             CSV delta format of :func:`repro.db.csvio.dump_delta`

Log entries *are* CSV deltas — the format the CLI's ``--delta``
directories already use — so a WAL entry can be inspected, edited or
replayed by hand with the ordinary tools.  This is also why the CSV
value round trip had to become the identity (:mod:`repro.db.csvio`):
a log whose entries come back subtly different replays the server into
a different database than the one that crashed.

Crash safety is rename-based *and* fsync'd: an entry is dumped into a
``.tmp-`` name, its files and directory fsync'd, atomically renamed
into place, and the WAL directory fsync'd so the rename survives power
loss — only then may the writer ack.  A snapshot directory is fully
written (and fsync'd) before ``meta.json`` (rewritten via
``os.replace`` + directory fsync) points at its sequence number, and
recovery ignores anything not named like a committed artefact.  At every crash point ``meta.json`` therefore
names a complete snapshot, and replaying the WAL entries *after* it
reproduces the exact pre-crash state (maintenance == recompute is
property-tested, and apply is deterministic).
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..db import csvio
from ..db.database import Database
from ..db.relation import Relation
from ..materialize.delta import Delta
from ..obs import LATENCY_BUCKETS, REGISTRY

PathLike = Union[str, Path]

_APPEND_SECONDS = REGISTRY.histogram(
    "repro_wal_append_seconds",
    "WAL entry append latency (dump + atomic rename).",
    labelnames=("view",),
    buckets=LATENCY_BUCKETS,
)
_SNAPSHOT_SECONDS = REGISTRY.histogram(
    "repro_wal_snapshot_seconds",
    "Snapshot cut latency (full dump + meta flip + prune).",
    labelnames=("view",),
    buckets=LATENCY_BUCKETS,
)

_FORMAT = 1
_META = "meta.json"
_PROGRAM = "program.dl"
_WAL = "wal"
_SNAPSHOT_PREFIX = "snapshot-"
_UNIVERSE = "@universe"
_SEQ_WIDTH = 8


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (directories need O_RDONLY)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(directory: Path) -> None:
    """fsync every file under ``directory``, then the directory itself.

    Called on a fully-written tmp directory *before* the atomic rename:
    ``os.replace`` orders the name change, but says nothing about the
    data blocks or the tmp directory's own entries — a crash after the
    rename could otherwise surface a committed-looking entry with empty
    or truncated CSV files.
    """
    for child in sorted(directory.iterdir()):
        if child.is_file():
            _fsync_path(child)
    _fsync_path(directory)


def _seq_name(seq: int) -> str:
    return "%0*d" % (_SEQ_WIDTH, seq)


def _parse_seq(name: str) -> Optional[int]:
    if len(name) == _SEQ_WIDTH and name.isdigit():
        return int(name)
    return None


@dataclass
class RecoveredState:
    """Everything :meth:`DeltaLog.recover` reads back from disk."""

    view: str
    program_text: str
    semantics: str
    carrier: Optional[str]
    schema: Dict[str, int]
    db: Database
    snapshot_seq: int
    entries: List[Tuple[int, Delta]]

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest committed batch."""
        return self.entries[-1][0] if self.entries else self.snapshot_seq


class DeltaLog:
    """One view's durable state: snapshot + numbered CSV delta entries."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self._meta: Optional[dict] = None

    # ------------------------------------------------------------------
    # Creation and recovery
    # ------------------------------------------------------------------

    @classmethod
    def exists(cls, directory: PathLike) -> bool:
        """True when ``directory`` holds an initialised log."""
        return (Path(directory) / _META).is_file()

    @classmethod
    def initialise(
        cls,
        directory: PathLike,
        view: str,
        program_text: str,
        semantics: str,
        carrier: Optional[str],
        db: Database,
    ) -> "DeltaLog":
        """Create a fresh state directory with a snapshot at sequence 0."""
        log = cls(directory)
        if cls.exists(directory):
            raise ValueError(
                "state directory %s is already initialised; recover from it "
                "or point the server at a fresh directory" % log.directory
            )
        log.directory.mkdir(parents=True, exist_ok=True)
        (log.directory / _WAL).mkdir(exist_ok=True)
        (log.directory / _PROGRAM).write_text(program_text)
        schema = {name: db[name].arity for name in db.relation_names()}
        log._write_snapshot_dir(0, db)
        log._write_meta(
            {
                "format": _FORMAT,
                "view": view,
                "semantics": semantics,
                "carrier": carrier,
                "schema": schema,
                "snapshot_seq": 0,
            }
        )
        return log

    def recover(self) -> RecoveredState:
        """Read back the snapshot and every committed entry after it."""
        meta = self._read_meta()
        schema = dict(meta["schema"])
        snapshot_seq = meta["snapshot_seq"]
        db = self._load_snapshot(snapshot_seq, schema)
        entries = list(self.entries(after=snapshot_seq, schema=schema))
        return RecoveredState(
            view=meta["view"],
            program_text=(self.directory / _PROGRAM).read_text(),
            semantics=meta["semantics"],
            carrier=meta.get("carrier"),
            schema=schema,
            db=db,
            snapshot_seq=snapshot_seq,
            entries=entries,
        )

    # ------------------------------------------------------------------
    # The write-ahead log
    # ------------------------------------------------------------------

    def append(self, seq: int, delta: Delta) -> None:
        """Durably record batch ``seq`` (atomic: dump to tmp, rename)."""
        started = time.perf_counter()
        wal = self.directory / _WAL
        final = wal / _seq_name(seq)
        if final.exists():
            raise ValueError("WAL entry %d already exists in %s" % (seq, wal))
        tmp = wal / (".tmp-" + _seq_name(seq))
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        csvio.dump_delta(delta, tmp)
        # Durability before the ack: entry data, then the rename itself.
        _fsync_tree(tmp)
        os.replace(tmp, final)
        _fsync_path(wal)
        _APPEND_SECONDS.labels(self.directory.name).observe(
            time.perf_counter() - started
        )

    def discard(self, seq: int) -> None:
        """Remove entry ``seq`` (the apply-failed undo of a logged batch)."""
        entry = self.directory / _WAL / _seq_name(seq)
        if entry.exists():
            shutil.rmtree(entry)

    def entries(
        self, after: int = 0, schema: Optional[Dict[str, int]] = None
    ) -> Iterator[Tuple[int, Delta]]:
        """Committed ``(seq, delta)`` entries with ``seq > after``, in order.

        ``.tmp-`` leftovers of a crashed append (never renamed, hence
        never committed, hence never acknowledged) are ignored.
        """
        if schema is None:
            schema = dict(self._read_meta()["schema"])
        wal = self.directory / _WAL
        if not wal.is_dir():
            return
        seqs = sorted(
            seq
            for entry in wal.iterdir()
            for seq in [_parse_seq(entry.name)]
            if seq is not None and seq > after
        )
        for seq in seqs:
            yield seq, csvio.load_delta(wal / _seq_name(seq), schema)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, seq: int, db: Database) -> None:
        """Snapshot the database at commit ``seq`` and prune behind it.

        Order matters for crash safety: the new snapshot directory is
        fully written first, then ``meta.json`` atomically starts
        pointing at it, and only then are the superseded snapshot and
        the WAL entries it absorbs deleted.  A crash between any two
        steps leaves a recoverable state (at worst with stale artefacts
        the next snapshot prunes).
        """
        started = time.perf_counter()
        meta = self._read_meta()
        self._write_snapshot_dir(seq, db)
        meta["snapshot_seq"] = seq
        meta["schema"] = {name: db[name].arity for name in db.relation_names()}
        self._write_meta(meta)
        self._prune(seq)
        _SNAPSHOT_SECONDS.labels(self.directory.name).observe(
            time.perf_counter() - started
        )

    @property
    def snapshot_seq(self) -> int:
        """The commit sequence the current snapshot captures."""
        return self._read_meta()["snapshot_seq"]

    def _snapshot_dir(self, seq: int) -> Path:
        return self.directory / (_SNAPSHOT_PREFIX + _seq_name(seq))

    def _write_snapshot_dir(self, seq: int, db: Database) -> None:
        final = self._snapshot_dir(seq)
        tmp = self.directory / (".tmp-" + final.name)
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        csvio.dump_database(db, tmp)
        # The universe can exceed the active domain (never shrinks), and
        # completion quantifies over all of it — persist it explicitly.
        csvio.dump_relation(
            Relation(_UNIVERSE, 1, [(v,) for v in db.universe]),
            tmp / (_UNIVERSE + ".csv"),
        )
        if final.exists():
            shutil.rmtree(final)
        _fsync_tree(tmp)
        os.replace(tmp, final)
        _fsync_path(self.directory)

    def _load_snapshot(self, seq: int, schema: Dict[str, int]) -> Database:
        directory = self._snapshot_dir(seq)
        if not directory.is_dir():
            raise ValueError(
                "state directory %s names snapshot %d but %s is missing"
                % (self.directory, seq, directory)
            )
        base = csvio.load_database(directory, schema)
        universe_rel = csvio.load_relation(
            directory / (_UNIVERSE + ".csv"), _UNIVERSE, 1
        )
        universe = base.universe | {v for (v,) in universe_rel}
        return Database(universe, base.relations.values(), check=False)

    def _prune(self, seq: int) -> None:
        """Drop snapshots older than ``seq`` and WAL entries ≤ ``seq``."""
        for entry in self.directory.iterdir():
            if entry.name.startswith(_SNAPSHOT_PREFIX):
                snap_seq = _parse_seq(entry.name[len(_SNAPSHOT_PREFIX):])
                if snap_seq is not None and snap_seq < seq:
                    shutil.rmtree(entry)
        wal = self.directory / _WAL
        for entry in wal.iterdir():
            entry_seq = _parse_seq(entry.name)
            if entry_seq is not None and entry_seq <= seq:
                shutil.rmtree(entry)

    # ------------------------------------------------------------------
    # meta.json
    # ------------------------------------------------------------------

    def _read_meta(self) -> dict:
        if self._meta is None:
            path = self.directory / _META
            if not path.is_file():
                raise ValueError(
                    "state directory %s has no %s; expected a directory "
                    "initialised by DeltaLog.initialise (or `repro serve`)"
                    % (self.directory, _META)
                )
            with open(path) as fh:
                meta = json.load(fh)
            if meta.get("format") != _FORMAT:
                raise ValueError(
                    "state directory %s has log format %r; this build reads "
                    "format %r" % (self.directory, meta.get("format"), _FORMAT)
                )
            self._meta = meta
        return dict(self._meta)

    def _write_meta(self, meta: dict) -> None:
        path = self.directory / _META
        tmp = self.directory / (_META + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The rename is what commits the new snapshot_seq — persist it.
        _fsync_path(self.directory)
        self._meta = meta
