"""Seeded workload generators for the experiments."""

from .cnf_gen import (
    CNFInstance,
    parity_chain,
    pigeonhole,
    random_kcnf,
    unique_model_instance,
    unsatisfiable_instance,
)

__all__ = [
    "CNFInstance",
    "parity_chain",
    "pigeonhole",
    "random_kcnf",
    "unique_model_instance",
    "unsatisfiable_instance",
]
