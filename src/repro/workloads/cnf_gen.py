"""CNF workload generators for the SAT-related experiments (E2, E3).

A :class:`CNFInstance` is the abstract SATISFIABILITY instance of the
paper's Example 1: a set of variables and a set of clauses, each clause a
set of signed variables.  :mod:`repro.reductions.sat_encoding` turns
instances into databases ``D(I)`` over the vocabulary ``(V, P, N)``.

All generators are seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Tuple

SignedVar = Tuple[str, bool]
"""A literal: ``(variable_name, is_positive)``."""


@dataclass(frozen=True)
class CNFInstance:
    """An immutable CNF instance.

    Attributes
    ----------
    variables:
        Variable names, in a fixed order.
    clauses:
        Each clause is a tuple of ``(variable, is_positive)`` literals.
    """

    variables: Tuple[str, ...]
    clauses: Tuple[Tuple[SignedVar, ...], ...]

    def __post_init__(self) -> None:
        known = set(self.variables)
        for clause in self.clauses:
            for var, _ in clause:
                if var not in known:
                    raise ValueError("clause mentions unknown variable %r" % var)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self.variables)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def is_satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment."""
        return all(
            any(assignment[var] == positive for var, positive in clause)
            for clause in self.clauses
        )

    def satisfying_assignments(self) -> List[Dict[str, bool]]:
        """All satisfying assignments, by truth-table enumeration."""
        out = []
        for bits in product((False, True), repeat=len(self.variables)):
            assignment = dict(zip(self.variables, bits))
            if self.is_satisfied_by(assignment):
                out.append(assignment)
        return out

    def count_models(self) -> int:
        """Number of satisfying assignments (exponential scan)."""
        return len(self.satisfying_assignments())

    def is_satisfiable(self) -> bool:
        """Whether some satisfying assignment exists (exponential scan)."""
        for bits in product((False, True), repeat=len(self.variables)):
            if self.is_satisfied_by(dict(zip(self.variables, bits))):
                return True
        return False


def _var_names(n: int) -> Tuple[str, ...]:
    return tuple("x%d" % i for i in range(1, n + 1))


def random_kcnf(
    num_vars: int, num_clauses: int, k: int = 3, seed: int = 0
) -> CNFInstance:
    """A uniform random k-CNF instance (clauses sampled with replacement,
    no repeated variable inside a clause)."""
    if k > num_vars:
        raise ValueError("clause width %d exceeds variable count %d" % (k, num_vars))
    rng = random.Random(seed)
    names = _var_names(num_vars)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(names, k)
        clauses.append(tuple((v, rng.random() < 0.5) for v in chosen))
    return CNFInstance(names, tuple(clauses))


def unique_model_instance(num_vars: int, seed: int = 0) -> CNFInstance:
    """An instance with *exactly one* satisfying assignment.

    Used for the Theorem 2 (US-completeness) experiment.  A random target
    assignment is fixed; an implication chain plus one anchoring unit
    clause pins every variable to it:

        (x_1 = a_1)  and  (x_i = a_i  ->  x_{i+1} = a_{i+1})  and
        (x_n = a_n  ->  x_1 = a_1 reinforced via reverse implications)

    Reverse implications make the chain rigid in both directions, so the
    model is unique without resorting to all-unit clauses.
    """
    rng = random.Random(seed)
    names = _var_names(num_vars)
    target = {v: rng.random() < 0.5 for v in names}
    clauses: List[Tuple[SignedVar, ...]] = [((names[0], target[names[0]]),)]
    for a, b in zip(names, names[1:]):
        # a=target(a) -> b=target(b), i.e. (not a-lit) or (b-lit)
        clauses.append(((a, not target[a]), (b, target[b])))
        clauses.append(((b, not target[b]), (a, target[a])))
    return CNFInstance(names, tuple(clauses))


def unsatisfiable_instance(num_vars: int = 1) -> CNFInstance:
    """A minimal unsatisfiable instance: ``x1`` and ``not x1``."""
    names = _var_names(max(1, num_vars))
    clauses = (((names[0], True),), ((names[0], False),))
    return CNFInstance(names, clauses)


def pigeonhole(holes: int) -> CNFInstance:
    """PHP(holes+1, holes): unsatisfiable, classically hard for resolution.

    Variables ``p_i_j`` mean "pigeon i sits in hole j".
    """
    pigeons = holes + 1
    names = tuple(
        "p_%d_%d" % (i, j) for i in range(1, pigeons + 1) for j in range(1, holes + 1)
    )
    clauses: List[Tuple[SignedVar, ...]] = []
    # Every pigeon somewhere.
    for i in range(1, pigeons + 1):
        clauses.append(
            tuple(("p_%d_%d" % (i, j), True) for j in range(1, holes + 1))
        )
    # No two pigeons share a hole.
    for j in range(1, holes + 1):
        for i1 in range(1, pigeons + 1):
            for i2 in range(i1 + 1, pigeons + 1):
                clauses.append(
                    (("p_%d_%d" % (i1, j), False), ("p_%d_%d" % (i2, j), False))
                )
    return CNFInstance(names, tuple(clauses))


def parity_chain(num_vars: int, parity: bool = True) -> CNFInstance:
    """XOR chain ``x1 xor ... xor xn = parity`` expanded to CNF.

    Has ``2**(n-1)`` models — a counting workload with known answer.
    """
    names = _var_names(num_vars)
    clauses: List[Tuple[SignedVar, ...]] = []
    for bits in product((False, True), repeat=num_vars):
        ones = sum(bits)
        if (ones % 2 == 1) != parity:
            # Forbid this falsifying assignment.
            clauses.append(
                tuple((names[i], not bits[i]) for i in range(num_vars))
            )
    return CNFInstance(names, tuple(clauses))


def fixed_instance_small() -> CNFInstance:
    """A tiny hand-made instance with exactly two models, used in docs:

    ``(x1 or x2) and (not x1 or x3) and (not x2 or not x3)``
    """
    names = _var_names(3)
    clauses = (
        (("x1", True), ("x2", True)),
        (("x1", False), ("x3", True)),
        (("x2", False), ("x3", False)),
    )
    return CNFInstance(names, clauses)
