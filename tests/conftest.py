"""Shared fixtures and the hypothesis profile for the test-suite.

Hypothesis strategies live in :mod:`strategies` (``tests/strategies.py``)
— import them with ``from strategies import ...``, never ``from conftest
import ...`` (conftest imports are ambiguous across collected directories;
``benchmarks/conftest.py`` used to shadow this module and break collection
from the repo root).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro import Database, parse_program
from repro.core.program import Program
from repro.graphs import generators as gg
from repro.graphs.encode import graph_to_database

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
# CI profile: derandomized (fixed seed derived from each test), so runs
# are reproducible across workers and reruns — a red CI build replays
# with exactly the same examples.  Selected via HYPOTHESIS_PROFILE=ci.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


# ----------------------------------------------------------------------
# Databases and programs used across many test files
# ----------------------------------------------------------------------


@pytest.fixture
def path4_db() -> Database:
    """L_4: edges 1->2->3->4."""
    return graph_to_database(gg.path(4))


@pytest.fixture
def cycle3_db() -> Database:
    """C_3, the odd cycle with no pi_1 fixpoint."""
    return graph_to_database(gg.cycle(3))


@pytest.fixture
def cycle4_db() -> Database:
    """C_4, the even cycle with two incomparable pi_1 fixpoints."""
    return graph_to_database(gg.cycle(4))


@pytest.fixture
def pi1_program() -> Program:
    """The paper's pi_1."""
    return parse_program("T(X) :- E(Y, X), !T(Y).")


@pytest.fixture
def tc_program() -> Program:
    """Transitive closure (pure DATALOG)."""
    return parse_program("S(X, Y) :- E(X, Y). S(X, Y) :- E(X, Z), S(Z, Y).")
