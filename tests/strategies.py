"""Hypothesis strategies shared across the test-suite.

This is a proper importable module (``from strategies import ...``) rather
than part of ``conftest.py``: importing from ``conftest`` is ambiguous when
several conftests are collected in one run — ``benchmarks/conftest.py``
used to shadow the tests' one and break collection from the repo root.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Database, Relation
from repro.core.literals import Atom, Eq, Negation, Neq
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Variable

_VARS = [Variable(n) for n in ("X", "Y", "Z")]

# ----------------------------------------------------------------------
# Persistable values for the CSV round-trip properties
# ----------------------------------------------------------------------

_INT_LOOKALIKES = [
    # Strings ``int()`` would happily parse but which are NOT the
    # canonical decimal form — the exact shapes the old bare-``int()``
    # coercion corrupted on reload.  They must stay strings.
    "01",
    "007",
    "1_0",
    " 7",
    "7 ",
    "+5",
    "-0",
    "٣",  # Arabic-Indic digit: int("٣") == 3, but it is not canonical
    "１",  # fullwidth digit
    "1e3",
    "0x10",
]

# ``csv`` cannot carry NUL, and lone surrogates cannot be encoded.
_TEXT = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\0"
    ),
    max_size=8,
)


def _is_canonical_int(s: str) -> bool:
    from repro.db.csvio import _CANONICAL_INT

    return _CANONICAL_INT.fullmatch(s) is not None


def persistable_strings():
    """Strings that survive the CSV round trip as themselves.

    A string that *is* the canonical decimal form of an integer (``"7"``,
    ``"-12"``) reloads as that integer by convention, so identity holds
    exactly for the complement — which includes every int-lookalike
    (``"01"``, ``" 7"``, ``"+5"``, ...) the old coercion corrupted.
    """
    return st.one_of(
        st.sampled_from(_INT_LOOKALIKES),
        _TEXT.filter(lambda s: not _is_canonical_int(s)),
    )


def persistable_values():
    """The CSV-persistable value universe: ints and non-lookalike strings."""
    return st.one_of(st.integers(), persistable_strings())
_IDB_UNARY = "T"
_IDB_BINARY = "S"
_IDB_ZEROARY = "B"
_EDB = "E"


@st.composite
def small_databases(draw, max_size: int = 4):
    """A database over {1..n} with a binary EDB relation E."""
    n = draw(st.integers(min_value=1, max_value=max_size))
    universe = list(range(1, n + 1))
    pairs = st.tuples(st.sampled_from(universe), st.sampled_from(universe))
    edges = draw(st.lists(pairs, max_size=8))
    return Database(universe, [Relation(_EDB, 2, edges)])


def _atom_strategy(pred: str, arity: int):
    return st.builds(
        lambda args: Atom(pred, args),
        st.tuples(*([st.sampled_from(_VARS)] * arity)),
    )


@st.composite
def body_literals(draw, allow_idb_negation: bool, include_zeroary: bool = False):
    """One random body literal over E/2, T/1, S/2 (and B/0) and X, Y, Z."""
    kinds = ["edb", "idb1", "idb2", "neg_edb", "eq", "neq"]
    if allow_idb_negation:
        kinds += ["neg_idb1", "neg_idb2"]
    if include_zeroary:
        kinds += ["idb0"] + (["neg_idb0"] if allow_idb_negation else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "edb":
        return draw(_atom_strategy(_EDB, 2))
    if kind == "idb1":
        return draw(_atom_strategy(_IDB_UNARY, 1))
    if kind == "idb2":
        return draw(_atom_strategy(_IDB_BINARY, 2))
    if kind == "idb0":
        return Atom(_IDB_ZEROARY, ())
    if kind == "neg_edb":
        return Negation(draw(_atom_strategy(_EDB, 2)))
    if kind == "neg_idb1":
        return Negation(draw(_atom_strategy(_IDB_UNARY, 1)))
    if kind == "neg_idb2":
        return Negation(draw(_atom_strategy(_IDB_BINARY, 2)))
    if kind == "neg_idb0":
        return Negation(Atom(_IDB_ZEROARY, ()))
    left, right = draw(st.tuples(st.sampled_from(_VARS), st.sampled_from(_VARS)))
    return Eq(left, right) if kind == "eq" else Neq(left, right)


@st.composite
def random_programs(
    draw,
    allow_idb_negation: bool = True,
    max_rules: int = 4,
    include_zeroary: bool = False,
):
    """A random program with IDB predicates T/1 and S/2 over EDB E/2.

    Both IDB predicates always head at least one rule, so arities are
    well-defined and every engine can run.  With ``include_zeroary`` the
    program also defines and uses a zero-ary (propositional) predicate
    B/0 — the degenerate relation shape the batch executor must handle.
    """
    signatures = [(_IDB_UNARY, 1), (_IDB_BINARY, 2)]
    if include_zeroary:
        signatures.append((_IDB_ZEROARY, 0))
    rules = []
    for pred, arity in signatures:
        n_rules = draw(st.integers(min_value=1, max_value=max_rules))
        for _ in range(n_rules):
            head = draw(_atom_strategy(pred, arity)) if arity else Atom(pred, ())
            body = draw(
                st.lists(
                    body_literals(allow_idb_negation, include_zeroary),
                    min_size=0,
                    max_size=3,
                )
            )
            rules.append(Rule(head, body))
    return Program(rules, carrier=_IDB_UNARY)


_LEFT_VARS = [Variable(n) for n in ("X", "Y")]
_RIGHT_VARS = [Variable(n) for n in ("U", "W")]


@st.composite
def _component_literals(draw, vars_pool, allow_negation: bool):
    """A body literal whose variables come from one pool only."""
    kinds = ["edb", "idb1", "idb2"]
    if allow_negation:
        kinds += ["neg_edb", "neg_idb1"]
    kind = draw(st.sampled_from(kinds))
    pick = st.sampled_from(vars_pool)
    if kind == "edb":
        return Atom(_EDB, (draw(pick), draw(pick)))
    if kind == "idb1":
        return Atom(_IDB_UNARY, (draw(pick),))
    if kind == "idb2":
        return Atom(_IDB_BINARY, (draw(pick), draw(pick)))
    if kind == "neg_edb":
        return Negation(Atom(_EDB, (draw(pick), draw(pick))))
    return Negation(Atom(_IDB_UNARY, (draw(pick),)))


@st.composite
def disconnected_programs(draw, allow_negation: bool = True):
    """Programs whose rule bodies have *disconnected* variable graphs.

    Each rule's body splits into two components over disjoint variable
    pools ({X, Y} and {U, W}) with at least one positive atom each, so
    evaluating it takes a genuine cross product — the shape a semi-join
    reduction pass must leave intact (there is no shared variable to
    reduce through).  Heads mix variables from both components, so a
    dropped component is observable in the derived tuples.
    """
    rules = []
    # T/1 and S/2 both head at least one rule so arities are defined.
    for pred, arity in ((_IDB_UNARY, 1), (_IDB_BINARY, 2)):
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            left = [Atom(_EDB, (draw(st.sampled_from(_LEFT_VARS)), draw(st.sampled_from(_LEFT_VARS))))]
            left += draw(
                st.lists(_component_literals(_LEFT_VARS, allow_negation), max_size=2)
            )
            right = [
                draw(
                    st.sampled_from(
                        [
                            Atom(_EDB, (_RIGHT_VARS[0], _RIGHT_VARS[1])),
                            Atom(_IDB_BINARY, (_RIGHT_VARS[0], _RIGHT_VARS[1])),
                            Atom(_IDB_UNARY, (_RIGHT_VARS[0],)),
                        ]
                    )
                )
            ]
            right += draw(
                st.lists(_component_literals(_RIGHT_VARS, allow_negation), max_size=2)
            )
            if arity == 1:
                head = Atom(pred, (draw(st.sampled_from(_LEFT_VARS + _RIGHT_VARS)),))
            else:
                # One head variable from each component: the cross
                # product is visible in the head tuples.
                head = Atom(
                    pred,
                    (
                        draw(st.sampled_from(_LEFT_VARS)),
                        draw(st.sampled_from(_RIGHT_VARS)),
                    ),
                )
            rules.append(Rule(head, left + right))
    return Program(rules, carrier=_IDB_UNARY)


@st.composite
def nonstratifiable_programs(draw, max_cycle: int = 3, max_extra_rules: int = 2):
    """Programs with recursion through negation, around a negation cycle.

    The core is a cycle of unary predicates ``W0 -> !W1 -> ... -> !W0``
    of random length (hence random *parity* — odd cycles are where the
    paper's fixpoint semantics loses all fixpoints, even cycles where it
    loses uniqueness), guarded by an ``E`` step so the game is played on
    the database graph: length 1 is exactly the win–move program.  On
    top, random extra rules mix EDB and IDB negation: extra disjuncts
    for the cycle predicates (win–move variants), a positive-recursion
    side predicate ``T``, and a stratified observer ``U`` negating into
    the cycle — so the well-founded undefined region both arises and
    propagates.  No draw is stratifiable (the cycle guarantees it).
    """
    k = draw(st.integers(min_value=1, max_value=max_cycle))
    preds = ["W%d" % i for i in range(k)]
    x, y, z = _VARS
    rules = [
        Rule(
            Atom(preds[i], (x,)),
            [Atom(_EDB, (x, y)), Negation(Atom(preds[(i + 1) % k], (y,)))],
        )
        for i in range(k)
    ]

    extra_kinds = st.sampled_from(["variant", "observer", "positive"])
    for _ in range(draw(st.integers(min_value=0, max_value=max_extra_rules))):
        kind = draw(extra_kinds)
        if kind == "variant":
            # Another disjunct for a cycle predicate, mixing EDB negation.
            head = Atom(draw(st.sampled_from(preds)), (x,))
            body = [Atom(_EDB, (x, y))]
            if draw(st.booleans()):
                body.append(Negation(Atom(_EDB, (y, x))))
            body.append(
                draw(st.sampled_from([Atom(preds[0], (y,)), Negation(Atom(preds[k - 1], (y,)))]))
            )
            rules.append(Rule(head, body))
        elif kind == "observer":
            # A stratified layer on top: negates into the undefined region.
            rules.append(
                Rule(
                    Atom("U", (x,)),
                    [Atom(_EDB, (x, y)), Negation(Atom(preds[0], (x,)))],
                )
            )
        else:
            # Positive recursion alongside the negation cycle.
            rules.append(Rule(Atom("T", (x,)), [Atom(_EDB, (y, x))]))
            rules.append(
                Rule(Atom("T", (x,)), [Atom(_EDB, (z, x)), Atom("T", (z,))])
            )
    return Program(rules, carrier=preds[0])


@st.composite
def databases_and_deltas(draw, max_deltas: int = 4, insert_only: bool = False,
                         delete_only: bool = False, grow: bool = True):
    """A small database plus a sequence of deltas over its E relation.

    Delta values are drawn from the universe (plus, when ``grow`` is
    left on, rarely a fresh element — exercising the universe-growth
    recompute fallback of every view semantics).  Insert-only sequences
    keep the fresh element (inserts are exactly what can grow the
    universe); delete-only ones drop it, since deleting an unseen value
    is never effective.
    """
    from repro.materialize import Delta

    db = draw(small_databases())
    universe = sorted(db.universe)
    fresh = max(universe) + 1
    pool = universe if (delete_only or not grow) else universe + [fresh]
    pairs = st.tuples(st.sampled_from(pool), st.sampled_from(pool))
    deltas = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_deltas))):
        ins = [] if delete_only else draw(st.lists(pairs, max_size=3))
        dels = [] if insert_only else draw(st.lists(pairs, max_size=3))
        dels = [t for t in dels if t not in set(ins)]
        deltas.append(Delta(inserts={"E": ins}, deletes={"E": dels}))
    return db, deltas


@st.composite
def positive_programs(draw, max_rules: int = 4):
    """A random negation-free program (paper's DATALOG class)."""
    rules = []
    for pred, arity in ((_IDB_UNARY, 1), (_IDB_BINARY, 2)):
        n_rules = draw(st.integers(min_value=1, max_value=max_rules))
        for _ in range(n_rules):
            head = draw(_atom_strategy(pred, arity))
            literal_kinds = st.sampled_from(["edb", "idb1", "idb2", "eq"])

            def make(kind, a=None):
                if kind == "edb":
                    return draw(_atom_strategy(_EDB, 2))
                if kind == "idb1":
                    return draw(_atom_strategy(_IDB_UNARY, 1))
                if kind == "idb2":
                    return draw(_atom_strategy(_IDB_BINARY, 2))
                left = draw(st.sampled_from(_VARS))
                right = draw(st.sampled_from(_VARS))
                return Eq(left, right)

            body = [
                make(draw(literal_kinds))
                for _ in range(draw(st.integers(min_value=0, max_value=3)))
            ]
            rules.append(Rule(head, body))
    return Program(rules, carrier=_IDB_UNARY)
