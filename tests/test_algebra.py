"""Unit + property tests for the relational-algebra kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.db import algebra
from repro.db.relation import Relation

pairs = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12)


def rel2(name, tuples):
    return Relation(name, 2, tuples)


def test_select_eq():
    r = rel2("E", [(1, 2), (2, 2)])
    assert set(algebra.select_eq(r, 0, 1).tuples) == {(1, 2)}


def test_select_col_eq():
    r = rel2("E", [(1, 1), (1, 2)])
    assert set(algebra.select_col_eq(r, 0, 1).tuples) == {(1, 1)}


def test_select_bad_column():
    with pytest.raises(IndexError):
        algebra.select_eq(rel2("E", []), 5, 1)


def test_project_reorder_and_duplicate():
    r = rel2("E", [(1, 2)])
    assert set(algebra.project(r, [1, 0]).tuples) == {(2, 1)}
    assert set(algebra.project(r, [0, 0, 1]).tuples) == {(1, 1, 2)}


def test_project_empty_columns():
    r = rel2("E", [(1, 2)])
    out = algebra.project(r, [])
    assert out.arity == 0
    assert out.tuples == frozenset({()})


def test_join_basic():
    left = rel2("L", [(1, 2), (3, 4)])
    right = rel2("R", [(2, 5), (2, 6)])
    out = algebra.join(left, right, [(1, 0)])
    assert set(out.tuples) == {(1, 2, 2, 5), (1, 2, 2, 6)}


def test_join_no_condition_is_cross():
    left = rel2("L", [(1, 1)])
    right = rel2("R", [(2, 2), (3, 3)])
    assert len(algebra.join(left, right, [])) == 2
    assert len(algebra.cross(left, right)) == 2


def test_join_multi_condition():
    left = rel2("L", [(1, 2), (1, 3)])
    right = rel2("R", [(1, 2), (1, 3)])
    out = algebra.join(left, right, [(0, 0), (1, 1)])
    assert set(out.tuples) == {(1, 2, 1, 2), (1, 3, 1, 3)}


def test_semijoin_antijoin_partition():
    left = rel2("L", [(1, 2), (3, 4)])
    right = rel2("R", [(2, 9)])
    semi = algebra.semijoin(left, right, [(1, 0)])
    anti = algebra.antijoin(left, right, [(1, 0)])
    assert set(semi.tuples) == {(1, 2)}
    assert set(anti.tuples) == {(3, 4)}
    assert semi.tuples | anti.tuples == left.tuples


def test_rename():
    assert algebra.rename(rel2("E", []), "F").name == "F"


def test_full_relation():
    out = algebra.full_relation("Q", 2, [0, 1])
    assert len(out) == 4


@given(pairs, pairs)
def test_join_symmetry(xs, ys):
    """join(L, R) on (i,j) mirrors join(R, L) on (j,i) modulo column swap."""
    left, right = rel2("L", xs), rel2("R", ys)
    ab = algebra.join(left, right, [(1, 0)])
    ba = algebra.join(right, left, [(0, 1)])
    swapped = {(t[2], t[3], t[0], t[1]) for t in ba}
    assert set(ab.tuples) == swapped


@given(pairs, pairs)
def test_semijoin_antijoin_cover(xs, ys):
    left, right = rel2("L", xs), rel2("R", ys)
    semi = algebra.semijoin(left, right, [(0, 0)])
    anti = algebra.antijoin(left, right, [(0, 0)])
    assert semi.tuples | anti.tuples == left.tuples
    assert not (semi.tuples & anti.tuples)


@given(pairs)
def test_project_identity(xs):
    r = rel2("E", xs)
    assert algebra.project(r, [0, 1]).tuples == r.tuples


@given(pairs, pairs)
def test_union_difference_laws(xs, ys):
    a, b = rel2("A", xs), rel2("A", ys)
    assert algebra.union(a, b).tuples == xs | ys
    assert algebra.difference(a, b).tuples == xs - ys
    assert algebra.intersection(a, b).tuples == xs & ys
