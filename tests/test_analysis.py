"""Tests for dependency graphs, stratification, classification, stats."""

import pytest

from repro import parse_program
from repro.analysis import (
    DependencyGraph,
    EngineSupport,
    GroundingStats,
    ProgramClass,
    ProgramStats,
    classify,
)
from repro.core.grounding import ground_program
from repro.graphs import generators as gg, graph_to_database
from repro.queries import distance_program, pi1, transitive_closure_program


class TestDependencyGraph:
    def test_edges_and_polarity(self):
        p = parse_program("A(X) :- B(X), !C(X). B(X) :- E(X, X). C(X) :- E(X, X).")
        g = DependencyGraph(p)
        kinds = {(e.source, e.target): e.negative for e in g.edges}
        assert kinds == {("B", "A"): False, ("C", "A"): True}

    def test_edb_not_in_graph(self):
        g = DependencyGraph(pi1())
        assert g.nodes == {"T"}

    def test_sccs_of_mutual_recursion(self):
        p = parse_program("A(X) :- B(X). B(X) :- A(X), E(X, X).")
        comps = DependencyGraph(p).sccs()
        assert frozenset({"A", "B"}) in comps

    def test_negative_self_loop_unstratifiable(self):
        g = DependencyGraph(pi1())
        assert not g.is_stratifiable()
        witness = g.negative_cycle_witness()
        assert witness.source == "T" and witness.target == "T"

    def test_strata_raise_on_unstratifiable(self):
        with pytest.raises(ValueError):
            DependencyGraph(pi1()).strata()

    def test_strata_levels(self):
        p = distance_program()
        sigma = DependencyGraph(p).strata()
        assert sigma["S1"] == 0 and sigma["S2"] == 0 and sigma["S3"] == 1

    def test_stratum_partition_order(self):
        p = distance_program()
        layers = DependencyGraph(p).stratum_partition()
        assert layers[0] == frozenset({"S1", "S2"})
        assert layers[1] == frozenset({"S3"})


class TestClassify:
    def test_positive(self):
        assert classify(transitive_closure_program()) is ProgramClass.POSITIVE

    def test_semipositive(self):
        p = parse_program("T(X) :- E(X, Y), !E(Y, X).")
        assert classify(p) is ProgramClass.SEMIPOSITIVE

    def test_inequality_makes_semipositive(self):
        p = parse_program("T(X) :- E(X, Y), X != Y.")
        assert classify(p) is ProgramClass.SEMIPOSITIVE

    def test_stratified(self):
        assert classify(distance_program()) is ProgramClass.STRATIFIED

    def test_general(self):
        assert classify(pi1()) is ProgramClass.GENERAL

    def test_engine_support_matrix(self):
        support = EngineSupport.for_program(pi1())
        assert not support.least_fixpoint and not support.stratified
        assert support.inflationary and support.well_founded
        support = EngineSupport.for_program(transitive_closure_program())
        assert support.least_fixpoint and support.stratified


class TestStats:
    def test_program_stats(self):
        stats = ProgramStats.of(distance_program())
        assert stats.rules == 6
        assert stats.idb_predicates == 3 and stats.edb_predicates == 1
        assert stats.max_arity == 4
        assert stats.negated_literals == 2
        assert stats.inequality_literals == 0

    def test_grounding_stats(self):
        db = graph_to_database(gg.path(4))
        gp = ground_program(pi1(), db)
        stats = GroundingStats.of(gp)
        assert stats.universe_size == 4
        assert stats.atom_space == 4
        assert stats.derivable_atoms == 3
        assert stats.ground_rules == 3
