"""Tests for terms, literals, rules, and programs (the core AST)."""

import pytest

from repro.core.literals import Atom, Eq, Negation, Neq
from repro.core.program import Program, ProgramError
from repro.core.rules import rule
from repro.core.terms import Constant, Variable, is_constant, is_variable, term


class TestTerms:
    def test_term_coercion_convention(self):
        assert term("X") == Variable("X")
        assert term("_tmp") == Variable("_tmp")
        assert term("a") == Constant("a")
        assert term(3) == Constant(3)
        assert term(Variable("Y")) == Variable("Y")
        assert term(Constant("Z")) == Constant("Z")  # passthrough, not Variable

    def test_predicates(self):
        assert is_variable(Variable("X")) and not is_variable(Constant(1))
        assert is_constant(Constant(1)) and not is_constant(Variable("X"))

    def test_str(self):
        assert str(Variable("X")) == "X"
        assert str(Constant(7)) == "7"


class TestAtoms:
    def test_args_coerced(self):
        a = Atom("E", ["X", 1])
        assert a.args == (Variable("X"), Constant(1))
        assert a.arity == 2

    def test_variables(self):
        a = Atom("E", ["X", "X", 1])
        assert a.variables() == {Variable("X")}

    def test_ground_tuple(self):
        a = Atom("E", ["X", 5])
        assert a.ground_tuple({Variable("X"): 9}) == (9, 5)

    def test_ground_tuple_unbound_raises(self):
        with pytest.raises(KeyError):
            Atom("E", ["X"]).ground_tuple({})

    def test_substitute(self):
        a = Atom("E", ["X", "Y"]).substitute({Variable("X"): 3})
        assert a.args == (Constant(3), Variable("Y"))
        assert not a.is_ground()

    def test_negate(self):
        n = Atom("E", ["X"]).negate()
        assert isinstance(n, Negation)
        assert n.variables() == {Variable("X")}


class TestComparisons:
    def test_eq_holds(self):
        assert Eq("X", "Y").holds(1, 1)
        assert not Eq("X", "Y").holds(1, 2)

    def test_neq_holds(self):
        assert Neq("X", "Y").holds(1, 2)
        assert not Neq("X", "Y").holds(1, 1)

    def test_variables_with_constant_side(self):
        assert Eq("X", 3).variables() == {Variable("X")}


class TestRules:
    def test_views(self):
        r = rule(
            Atom("T", ["X"]),
            Atom("E", ["Y", "X"]),
            Negation(Atom("T", ["Y"])),
            Neq("X", "Y"),
        )
        assert len(r.positive_atoms()) == 1
        assert len(r.negated_atoms()) == 1
        assert len(r.comparisons()) == 1
        assert r.body_predicates() == {"E", "T"}

    def test_variable_partition(self):
        r = rule(Atom("T", ["X"]), Atom("E", ["Y", "X"]), Negation(Atom("T", ["Z"])))
        assert r.head_variables() == {Variable("X")}
        assert r.existential_variables() == {Variable("Y"), Variable("Z")}
        assert r.positive_variables() == {Variable("X"), Variable("Y")}

    def test_safety(self):
        safe = rule(Atom("T", ["X"]), Atom("E", ["X", "Y"]))
        unsafe = rule(Atom("T", ["X"]), Negation(Atom("T", ["X"])))
        assert safe.is_safe()
        assert not unsafe.is_safe()

    def test_positivity_counts_inequalities(self):
        assert rule(Atom("T", ["X"]), Atom("E", ["X", "X"])).is_positive()
        assert rule(Atom("T", ["X"]), Eq("X", "X")).is_positive()
        assert not rule(Atom("T", ["X"]), Neq("X", "X")).is_positive()
        assert not rule(Atom("T", ["X"]), Negation(Atom("E", ["X", "X"]))).is_positive()

    def test_empty_body_str(self):
        assert str(rule(Atom("T", [1]))) == "T(1)."


class TestProgram:
    def test_edb_idb_split(self):
        p = Program(
            [
                rule(Atom("T", ["X"]), Atom("E", ["Y", "X"])),
                rule(Atom("S", ["X"]), Atom("T", ["X"])),
            ]
        )
        assert p.idb_predicates == {"T", "S"}
        assert p.edb_predicates == {"E"}
        assert p.predicates == {"T", "S", "E"}

    def test_arity_consistency_enforced(self):
        with pytest.raises(ProgramError):
            Program(
                [
                    rule(Atom("T", ["X"]), Atom("E", ["X"])),
                    rule(Atom("T", ["X", "Y"]), Atom("E", ["X"])),
                ]
            )

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_carrier_default_single_idb(self):
        p = Program([rule(Atom("T", ["X"]), Atom("E", ["X", "X"]))])
        assert p.carrier == "T"

    def test_carrier_required_for_multi_idb(self):
        p = Program(
            [
                rule(Atom("T", ["X"]), Atom("E", ["X", "X"])),
                rule(Atom("S", ["X"]), Atom("T", ["X"])),
            ]
        )
        with pytest.raises(ProgramError):
            _ = p.carrier
        assert p.with_carrier("S").carrier == "S"

    def test_carrier_must_be_idb(self):
        with pytest.raises(ProgramError):
            Program([rule(Atom("T", ["X"]), Atom("E", ["X", "X"]))], carrier="E")

    def test_rules_for(self):
        r1 = rule(Atom("T", ["X"]), Atom("E", ["X", "X"]))
        r2 = rule(Atom("T", ["X"]), Atom("T", ["X"]))
        p = Program([r1, r2])
        assert p.rules_for("T") == (r1, r2)

    def test_union(self):
        a = Program([rule(Atom("T", ["X"]), Atom("E", ["X", "X"]))])
        b = Program([rule(Atom("S", ["X"]), Atom("T", ["X"]))])
        combined = a.union(b, carrier="S")
        assert combined.idb_predicates == {"T", "S"}

    def test_is_positive_and_safe(self):
        pos = Program([rule(Atom("T", ["X"]), Atom("E", ["X", "Y"]))])
        assert pos.is_positive() and pos.is_safe()
        neg = Program([rule(Atom("T", ["X"]), Negation(Atom("E", ["X", "X"])))])
        assert not neg.is_positive() and not neg.is_safe()

    def test_equality_ignores_rule_order(self):
        r1 = rule(Atom("T", ["X"]), Atom("E", ["X", "X"]))
        r2 = rule(Atom("T", ["X"]), Atom("T", ["X"]))
        assert Program([r1, r2]) == Program([r2, r1])
