"""Tests for Boolean circuits and succinct graphs (Theorem 4 substrate)."""

from itertools import product

import pytest

from repro.circuits.circuit import AND, IN, NOT, Circuit, CircuitBuilder, Gate
from repro.circuits.builders import (
    complete_graph_circuit,
    empty_graph_circuit,
    explicit_graph_circuit,
    hypercube_circuit,
)
from repro.circuits.succinct import SuccinctGraph
from repro.graphs import generators as gg
from repro.graphs.digraph import Digraph


class TestGateValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Gate("XOR", 1, 1)

    def test_in_gate_shape(self):
        with pytest.raises(ValueError):
            Gate(IN, 1, 0)

    def test_not_gate_shape(self):
        with pytest.raises(ValueError):
            Gate(NOT, 1, 2)

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            Circuit([Gate(IN, 0, 0), Gate(AND, 1, 2)])  # gate 2 feeds itself

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            Circuit([])


class TestEvaluation:
    def test_basic_gates(self):
        b = CircuitBuilder()
        x, y = b.input(), b.input()
        b.or_(b.and_(x, y), b.not_(x))
        circuit = b.build()
        truth = {
            (0, 0): True, (0, 1): True, (1, 0): False, (1, 1): True
        }
        for bits, expected in truth.items():
            assert circuit.evaluate(bits) is expected

    def test_input_count_enforced(self):
        b = CircuitBuilder()
        b.input()
        with pytest.raises(ValueError):
            b.build().evaluate((0, 1))

    def test_and_all_or_all(self):
        b = CircuitBuilder()
        xs = [b.input() for _ in range(3)]
        b.and_all(xs)
        c = b.build()
        assert c.evaluate((1, 1, 1)) and not c.evaluate((1, 0, 1))

    def test_constant_false(self):
        b = CircuitBuilder()
        b.input()
        b.constant_false()
        c = b.build()
        assert not c.evaluate((0,)) and not c.evaluate((1,))


class TestSuccinct:
    def test_arity_check(self):
        b = CircuitBuilder()
        b.input()
        with pytest.raises(ValueError):
            SuccinctGraph(b.build(), 1)  # needs 2 inputs for 1 address bit

    def test_explicit_roundtrip(self):
        nodes = [tuple(bits) for bits in product((0, 1), repeat=2)]
        g = Digraph(nodes, [(nodes[0], nodes[1]), (nodes[2], nodes[3])])
        sg = explicit_graph_circuit(g, 2)
        assert sg.expand() == g

    def test_explicit_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            explicit_graph_circuit(gg.path(2), 1)  # int nodes, not bit tuples

    def test_empty_graph(self):
        assert len(empty_graph_circuit(2).expand().edges) == 0

    def test_complete_graph(self):
        g = complete_graph_circuit(2).expand()
        assert len(g.edges) == 12  # K4 directed both ways
        assert all(u != v for u, v in g.edges)

    def test_hypercube_circuit_matches_generator(self):
        expanded = hypercube_circuit(3).expand()
        reference = gg.hypercube(3)
        assert expanded.edges == reference.edges

    def test_has_edge_agrees_with_expand(self):
        sg = hypercube_circuit(2)
        explicit = sg.expand()
        for u in explicit.nodes:
            for v in explicit.nodes:
                assert sg.has_edge(u, v) == ((u, v) in explicit.edges)

    def test_num_nodes(self):
        assert hypercube_circuit(3).num_nodes == 8
