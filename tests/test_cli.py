"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    """A program file and CSV database for the paper's pi_1 on L_4."""
    program = tmp_path / "pi1.dl"
    program.write_text("T(X) :- E(Y, X), !T(Y).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    (dbdir / "E.csv").write_text("1,2\n2,3\n3,4\n")
    return program, dbdir


def test_run_inflationary(workspace, capsys):
    program, dbdir = workspace
    assert main(["run", str(program), "--db", str(dbdir)]) == 0
    out = capsys.readouterr().out
    assert "engine=inflationary" in out
    assert "T/1 (3 tuples)" in out


def test_run_wellfounded(workspace, capsys):
    program, dbdir = workspace
    assert main(["run", str(program), "--db", str(dbdir), "--semantics", "wellfounded"]) == 0
    out = capsys.readouterr().out
    assert "total=True" in out


def test_run_naive_rejects_general_program(workspace):
    program, dbdir = workspace
    from repro.core.semantics import SemanticsError

    with pytest.raises(SemanticsError):
        main(["run", str(program), "--db", str(dbdir), "--semantics", "naive"])


def test_analyze(workspace, capsys):
    program, dbdir = workspace
    assert main(["analyze", str(program), "--db", str(dbdir)]) == 0
    out = capsys.readouterr().out
    assert "fixpoint exists : True" in out
    assert "unique          : True" in out
    assert "least fixpoint:" in out


def test_classify(workspace, capsys):
    program, _ = workspace
    assert main(["classify", str(program)]) == 0
    out = capsys.readouterr().out
    assert "class            : general" in out
    assert "inflationary ok  : True" in out


def test_classify_stratified(tmp_path, capsys):
    program = tmp_path / "strat.dl"
    program.write_text(
        "TC(X, Y) :- E(X, Y). TC(X, Y) :- E(X, Z), TC(Z, Y). N(X, Y) :- !TC(X, Y).\n"
    )
    assert main(["classify", str(program)]) == 0
    out = capsys.readouterr().out
    assert "class            : stratified" in out
    assert "stratum 0        : TC" in out
    assert "stratum 1        : N" in out


def test_run_with_carrier(tmp_path, capsys):
    program = tmp_path / "two.dl"
    program.write_text("A(X) :- E(X, Y). B(X) :- A(X).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    (dbdir / "E.csv").write_text("1,2\n")
    assert main(["run", str(program), "--db", str(dbdir), "--carrier", "B"]) == 0
    out = capsys.readouterr().out
    assert "A/1" in out and "B/1" in out


def test_missing_database_relation(tmp_path):
    program = tmp_path / "p.dl"
    program.write_text("T(X) :- E(X, X).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    with pytest.raises(FileNotFoundError):
        main(["run", str(program), "--db", str(dbdir)])


def test_update_applies_csv_delta(workspace, tmp_path, capsys):
    program, dbdir = workspace
    program = tmp_path / "tc.dl"
    program.write_text(
        "TC(X, Y) :- E(X, Y).\nTC(X, Y) :- E(X, Z), TC(Z, Y).\n"
        "NOTC(X, Y) :- !TC(X, Y).\n"
    )
    deltadir = tmp_path / "delta"
    deltadir.mkdir()
    (deltadir / "E.insert.csv").write_text("4,1\n")
    (deltadir / "E.delete.csv").write_text("2,3\n")
    out_dir = tmp_path / "out"
    assert (
        main(
            [
                "update",
                str(program),
                "--db",
                str(dbdir),
                "--delta",
                str(deltadir),
                "--carrier",
                "NOTC",
                "--out",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "engine=stratified" in out
    assert "E: +1 -1" in out
    assert "TC:" in out and "NOTC:" in out
    # The post-delta database was written back.
    assert (out_dir / "E.csv").read_text().splitlines() == ["1,2", "3,4", "4,1"]


def test_update_rejects_unknown_delta_relation(workspace, tmp_path):
    program, dbdir = workspace
    deltadir = tmp_path / "delta"
    deltadir.mkdir()
    (deltadir / "Nope.insert.csv").write_text("1\n")
    with pytest.raises(ValueError):
        main(["update", str(program), "--db", str(dbdir), "--delta", str(deltadir)])


def test_update_wellfounded_reports_undefined_partition(workspace, tmp_path, capsys):
    """pi_1 on L_4 plus the closing edge (4, 1): an even cycle — every
    position becomes undefined, reported under T@undef."""
    program, dbdir = workspace
    deltadir = tmp_path / "delta"
    deltadir.mkdir()
    (deltadir / "E.insert.csv").write_text("4,1\n")
    assert (
        main(
            [
                "update",
                str(program),
                "--db",
                str(dbdir),
                "--delta",
                str(deltadir),
                "--semantics",
                "wellfounded",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "engine=wellfounded" in out
    assert "T@undef: +4 -0" in out
    assert "T: +0 -2" in out  # the decided atoms {2, 4} drown in the cycle


def test_update_batch_composes_deltas(workspace, tmp_path, capsys):
    """Two --delta directories under --batch make one transaction whose
    churned tuple cancels out."""
    program, dbdir = workspace
    d1 = tmp_path / "d1"
    d1.mkdir()
    (d1 / "E.insert.csv").write_text("4,1\n")
    d2 = tmp_path / "d2"
    d2.mkdir()
    (d2 / "E.delete.csv").write_text("4,1\n")
    assert (
        main(
            [
                "update",
                str(program),
                "--db",
                str(dbdir),
                "--delta",
                str(d1),
                "--delta",
                str(d2),
                "--batch",
                "--semantics",
                "wellfounded",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "batch of 2 delta(s)" in out
    assert "(no change)" in out


def test_update_sequential_deltas_print_each_changeset(workspace, tmp_path, capsys):
    program, dbdir = workspace
    d1 = tmp_path / "d1"
    d1.mkdir()
    (d1 / "E.insert.csv").write_text("4,1\n")
    d2 = tmp_path / "d2"
    d2.mkdir()
    (d2 / "E.delete.csv").write_text("4,1\n")
    assert (
        main(
            [
                "update",
                str(program),
                "--db",
                str(dbdir),
                "--delta",
                str(d1),
                "--delta",
                str(d2),
                "--semantics",
                "inflationary",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("engine=") == 2
    assert "E: +1 -0" in out and "E: +0 -1" in out


def test_explain_prints_plans_and_estimates(workspace, capsys):
    program, dbdir = workspace
    assert main(["explain", str(program), "--db", str(dbdir)]) == 0
    out = capsys.readouterr().out
    assert "semantics=wellfounded" in out  # auto-detected: pi_1 is unstratifiable
    assert "plan for T(X) :- E(Y, X), !T(Y)." in out
    assert "observed planner statistics" in out


def test_explain_profile_attributes_phases(workspace, tmp_path, capsys):
    from repro.obs import RECORDER, TRACER

    program, dbdir = workspace
    trace = tmp_path / "trace.json"
    assert (
        main(
            [
                "explain",
                str(program),
                "--db",
                str(dbdir),
                "--profile",
                "--trace-out",
                str(trace),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "profile: wall" in out and "attributed to spans" in out
    assert "alternation.step" in out
    # The profile run leaves the process-wide facades off again.
    assert not RECORDER.enabled and not TRACER.enabled
    import json

    doc = json.loads(trace.read_text())
    assert any(e["name"] == "wellfounded" for e in doc["traceEvents"])
