"""Round-trip tests for CSV I/O."""

import pytest

from repro.db import csvio
from repro.db.database import Database
from repro.db.relation import Relation


def test_relation_roundtrip(tmp_path):
    rel = Relation("E", 2, [(1, 2), (2, 3)])
    path = tmp_path / "E.csv"
    csvio.dump_relation(rel, path)
    back = csvio.load_relation(path, "E", 2)
    assert back == rel


def test_mixed_value_coercion(tmp_path):
    rel = Relation("M", 2, [(1, "a"), ("b", 2)])
    path = tmp_path / "M.csv"
    csvio.dump_relation(rel, path)
    back = csvio.load_relation(path, "M", 2)
    assert back == rel


def test_arity_mismatch_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1,2,3\n")
    with pytest.raises(ValueError):
        csvio.load_relation(path, "E", 2)


def test_database_roundtrip(tmp_path):
    db = Database(
        {1, 2, 3},
        [Relation("E", 2, [(1, 2), (2, 3)]), Relation("V", 1, [(1,), (3,)])],
    )
    csvio.dump_database(db, tmp_path)
    back = csvio.load_database(tmp_path, {"E": 2, "V": 1})
    assert back["E"] == db["E"]
    assert back["V"] == db["V"]
    # The reloaded universe is the active domain.
    assert back.universe == {1, 2, 3}


def test_delta_roundtrip(tmp_path):
    from repro.materialize import Delta

    delta = Delta(
        inserts={"E": [(1, 2), (2, 3)], "V": [(4,)]},
        deletes={"E": [(3, 1)]},
    )
    csvio.dump_delta(delta, tmp_path)
    back = csvio.load_delta(tmp_path, {"E": 2, "V": 1})
    assert back == delta


def test_load_delta_missing_files_are_empty(tmp_path):
    back = csvio.load_delta(tmp_path, {"E": 2})
    assert back.is_empty()


def test_load_delta_rejects_unknown_relation(tmp_path):
    (tmp_path / "R.insert.csv").write_text("1,2\n")
    with pytest.raises(ValueError):
        csvio.load_delta(tmp_path, {"E": 2})


def test_load_delta_rejects_arity_mismatch(tmp_path):
    (tmp_path / "E.insert.csv").write_text("1,2,3\n")
    with pytest.raises(ValueError):
        csvio.load_delta(tmp_path, {"E": 2})


def test_load_delta_rejects_typoed_file(tmp_path):
    (tmp_path / "E.inserts.csv").write_text("1,2\n")  # note the plural typo
    with pytest.raises(ValueError):
        csvio.load_delta(tmp_path, {"E": 2})


# ----------------------------------------------------------------------
# Zero-ary relations: "contains the empty tuple" vs "empty" must survive
# the round trip (the on-disk marker row disambiguates what a blank CSV
# file could not).
# ----------------------------------------------------------------------


def test_zeroary_relation_roundtrip(tmp_path):
    true_rel = Relation("B", 0, [()])
    false_rel = Relation("B", 0, [])
    true_path = tmp_path / "B_true.csv"
    false_path = tmp_path / "B_false.csv"
    csvio.dump_relation(true_rel, true_path)
    csvio.dump_relation(false_rel, false_path)
    assert csvio.load_relation(true_path, "B", 0) == true_rel
    assert csvio.load_relation(false_path, "B", 0) == false_rel
    # The two files are distinguishable on disk, not just in memory.
    assert true_path.read_text() != false_path.read_text()


def test_zeroary_marker_does_not_clash_with_unary_values(tmp_path):
    rel = Relation("V", 1, [("()",), (1,)])
    path = tmp_path / "V.csv"
    csvio.dump_relation(rel, path)
    assert csvio.load_relation(path, "V", 1) == rel


def test_zeroary_delta_roundtrip(tmp_path):
    from repro.materialize import Delta

    delta = Delta(inserts={"B": [()]}, deletes={"C": [()]})
    csvio.dump_delta(delta, tmp_path)
    back = csvio.load_delta(tmp_path, {"B": 0, "C": 0})
    assert back == delta
    assert back.inserts("B") == frozenset([()])
    assert back.deletes("C") == frozenset([()])


def test_zeroary_empty_delta_roundtrip(tmp_path):
    from repro.materialize import Delta

    # Nothing changed: no files are written, and loading yields the
    # empty change — NOT "insert the empty tuple".
    delta = Delta(inserts={"B": []})
    csvio.dump_delta(delta, tmp_path)
    assert list(tmp_path.iterdir()) == []
    back = csvio.load_delta(tmp_path, {"B": 0})
    assert back.is_empty()


# ----------------------------------------------------------------------
# Value-corruption regressions: only the *canonical* decimal form of an
# integer reloads as an int.  The old bare-int() coercion also captured
# "01", " 7", "+5", "1_0", ... — silently rewriting stored strings,
# which would have poisoned the server's WAL replay.
# ----------------------------------------------------------------------


def test_int_lookalike_strings_roundtrip_as_strings(tmp_path):
    rel = Relation("E", 2, [("01", "1_0"), (" 7", "+5")])
    path = tmp_path / "E.csv"
    csvio.dump_relation(rel, path)
    assert csvio.load_relation(path, "E", 2) == rel


@pytest.mark.parametrize(
    "lookalike",
    ["01", "007", "1_0", " 7", "7 ", "+5", "-0", "- 1", "٣", "１", "1e3"],
)
def test_noncanonical_int_forms_stay_strings(tmp_path, lookalike):
    path = tmp_path / "V.csv"
    csvio.dump_relation(Relation("V", 1, [(lookalike,)]), path)
    (loaded,) = next(iter(csvio.load_relation(path, "V", 1)))
    assert loaded == lookalike and isinstance(loaded, str)


def test_canonical_negative_int_still_coerces(tmp_path):
    rel = Relation("V", 1, [(-12,), (0,), (345,)])
    path = tmp_path / "V.csv"
    csvio.dump_relation(rel, path)
    assert csvio.load_relation(path, "V", 1) == rel


def test_empty_string_value_roundtrips(tmp_path):
    # Arity-1 ("",) used to vanish: an unquoted empty field is a blank
    # line, which csv.reader skips.  QUOTE_NONNUMERIC keeps it visible.
    rel = Relation("V", 1, [("",), ("x",)])
    path = tmp_path / "V.csv"
    csvio.dump_relation(rel, path)
    assert csvio.load_relation(path, "V", 1) == rel


def test_dump_rejects_bool_values(tmp_path):
    # bool is an int subclass; unquoted "True" would reload as a string.
    with pytest.raises(ValueError, match="bool"):
        csvio.dump_relation(Relation("V", 1, [(True,)]), tmp_path / "V.csv")


def test_dump_rejects_nonpersistable_types(tmp_path):
    with pytest.raises(ValueError):
        csvio.dump_relation(Relation("V", 1, [(1.5,)]), tmp_path / "V.csv")


# ----------------------------------------------------------------------
# load_delta error reporting
# ----------------------------------------------------------------------


def test_load_delta_missing_directory_is_a_clear_error(tmp_path):
    with pytest.raises(ValueError, match="does not exist"):
        csvio.load_delta(tmp_path / "nope", {"E": 2})


def test_load_delta_on_a_file_is_a_clear_error(tmp_path):
    stray = tmp_path / "delta"
    stray.write_text("1,2\n")
    with pytest.raises(ValueError, match="not a directory"):
        csvio.load_delta(stray, {"E": 2})


def test_load_delta_empty_relation_name_is_a_clear_error(tmp_path):
    # A file named exactly ".insert.csv" has an empty relation name; the
    # old code reported it as an "unknown relation ''" confusion.
    (tmp_path / ".insert.csv").write_text("1,2\n")
    with pytest.raises(ValueError, match="empty relation name"):
        csvio.load_delta(tmp_path, {"E": 2})
