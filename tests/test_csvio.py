"""Round-trip tests for CSV I/O."""

import pytest

from repro.db import csvio
from repro.db.database import Database
from repro.db.relation import Relation


def test_relation_roundtrip(tmp_path):
    rel = Relation("E", 2, [(1, 2), (2, 3)])
    path = tmp_path / "E.csv"
    csvio.dump_relation(rel, path)
    back = csvio.load_relation(path, "E", 2)
    assert back == rel


def test_mixed_value_coercion(tmp_path):
    rel = Relation("M", 2, [(1, "a"), ("b", 2)])
    path = tmp_path / "M.csv"
    csvio.dump_relation(rel, path)
    back = csvio.load_relation(path, "M", 2)
    assert back == rel


def test_arity_mismatch_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1,2,3\n")
    with pytest.raises(ValueError):
        csvio.load_relation(path, "E", 2)


def test_database_roundtrip(tmp_path):
    db = Database(
        {1, 2, 3},
        [Relation("E", 2, [(1, 2), (2, 3)]), Relation("V", 1, [(1,), (3,)])],
    )
    csvio.dump_database(db, tmp_path)
    back = csvio.load_database(tmp_path, {"E": 2, "V": 1})
    assert back["E"] == db["E"]
    assert back["V"] == db["V"]
    # The reloaded universe is the active domain.
    assert back.universe == {1, 2, 3}
