"""Property tests: CSV persistence is a round-trip identity.

The WAL replay path (``repro.server.wal``) recovers a server by
re-applying logged CSV deltas, so ``load(dump(x)) == x`` must hold for
*every* persistable relation, database and delta — not just friendly
examples.  The adversarial part of the value universe is strings that
``int()`` would parse (``"01"``, ``" 7"``, ``"+5"``, ``"-0"``, ...):
the old coercion turned those into integers on reload, which is exactly
the corruption that would have poisoned replay.  The convention tested
here is the fixed one: a value reloads as an ``int`` iff its text is
the canonical decimal form (``repr`` of an int), so every other string
— including every int-lookalike — reloads as itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import csvio
from repro.db.database import Database
from repro.db.relation import Relation
from repro.materialize import Delta
from strategies import persistable_strings, persistable_values


def _tuples(arity, max_size=6):
    return st.lists(
        st.tuples(*([persistable_values()] * arity)), max_size=max_size
    )


@st.composite
def relations(draw, name="R", min_arity=0, max_arity=3):
    arity = draw(st.integers(min_value=min_arity, max_value=max_arity))
    return Relation(name, arity, draw(_tuples(arity)))


@given(rel=relations())
def test_relation_roundtrip_identity(rel, tmp_path_factory):
    path = tmp_path_factory.mktemp("rel") / "R.csv"
    csvio.dump_relation(rel, path)
    assert csvio.load_relation(path, rel.name, rel.arity) == rel


@given(data=st.data())
def test_database_roundtrip_identity(data, tmp_path_factory):
    rels = [
        data.draw(relations(name=name), label=name) for name in ("E", "S", "V")
    ]
    active = {v for rel in rels for t in rel for v in t}
    db = Database(active, rels, check=False)
    directory = tmp_path_factory.mktemp("db")
    csvio.dump_database(db, directory)
    back = csvio.load_database(
        directory, {rel.name: rel.arity for rel in rels}
    )
    for rel in rels:
        assert back[rel.name] == rel
    # The reloaded universe is the active domain, by contract.
    assert back.universe == active


@given(data=st.data())
def test_delta_roundtrip_identity(data, tmp_path_factory):
    schema = {"E": 2, "V": 1, "B": 0}
    inserts = {
        name: data.draw(_tuples(arity), label="ins " + name)
        for name, arity in schema.items()
    }
    deletes = {
        # A tuple may not be on both sides of one relation's change.
        name: [
            t
            for t in data.draw(_tuples(arity), label="del " + name)
            if t not in set(inserts[name])
        ]
        for name, arity in schema.items()
    }
    delta = Delta(inserts=inserts, deletes=deletes)
    directory = tmp_path_factory.mktemp("delta")
    csvio.dump_delta(delta, directory)
    assert csvio.load_delta(directory, schema) == delta


@given(value=st.integers())
def test_every_int_reloads_as_int(value, tmp_path_factory):
    path = tmp_path_factory.mktemp("int") / "V.csv"
    csvio.dump_relation(Relation("V", 1, [(value,)]), path)
    back = csvio.load_relation(path, "V", 1)
    (loaded,) = next(iter(back))
    assert loaded == value and isinstance(loaded, int)


@given(value=persistable_strings())
def test_every_noncanonical_string_reloads_as_string(value, tmp_path_factory):
    path = tmp_path_factory.mktemp("str") / "V.csv"
    csvio.dump_relation(Relation("V", 1, [(value,)]), path)
    back = csvio.load_relation(path, "V", 1)
    (loaded,) = next(iter(back))
    assert loaded == value and isinstance(loaded, str)


@given(value=st.integers())
def test_canonical_string_form_collapses_to_the_int(value, tmp_path_factory):
    # The one deliberate non-identity: a string that IS the canonical
    # decimal form reloads as the integer.  This is the documented
    # convention ("7" and 7 are the same stored value), not corruption —
    # the pair never coexists distinctly on disk.
    path = tmp_path_factory.mktemp("canon") / "V.csv"
    csvio.dump_relation(Relation("V", 1, [(str(value),)]), path)
    (loaded,) = next(iter(csvio.load_relation(path, "V", 1)))
    assert loaded == value and isinstance(loaded, int)


@given(
    rows=st.lists(
        st.tuples(persistable_values(), persistable_values()), max_size=5
    )
)
@settings(max_examples=50)
def test_double_roundtrip_is_stable(rows, tmp_path_factory):
    # dump∘load is idempotent: a second round trip changes nothing
    # (replay of a replayed log converges).
    directory = tmp_path_factory.mktemp("stable")
    rel = Relation("E", 2, rows)
    csvio.dump_relation(rel, directory / "a.csv")
    once = csvio.load_relation(directory / "a.csv", "E", 2)
    csvio.dump_relation(once, directory / "b.csv")
    twice = csvio.load_relation(directory / "b.csv", "E", 2)
    assert twice == once
