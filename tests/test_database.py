"""Unit tests for repro.db.database."""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation


def test_basic_access():
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    assert "E" in db
    assert db["E"].arity == 2
    assert db.arity_of("E") == 2
    assert db.get("missing") is None


def test_missing_relation_raises_keyerror():
    db = Database({1}, [])
    with pytest.raises(KeyError):
        db["E"]


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Database({1}, [Relation("E", 1, []), Relation("E", 2, [])])


def test_domain_check():
    with pytest.raises(ValueError):
        Database({1}, [Relation("E", 2, [(1, 99)])])


def test_domain_check_can_be_skipped():
    db = Database({1}, [Relation("E", 2, [(1, 99)])], check=False)
    assert (1, 99) in db["E"]


def test_from_dict_infers_arity():
    db = Database.from_dict({1, 2}, {"E": [(1, 2)]})
    assert db["E"].arity == 2


def test_from_dict_empty_needs_arity():
    with pytest.raises(ValueError):
        Database.from_dict({1}, {"E": []})
    db = Database.from_dict({1}, {"E": []}, arities={"E": 2})
    assert db["E"].arity == 2


def test_with_relation_replaces():
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    db2 = db.with_relation(Relation("E", 2, [(2, 1)]))
    assert (1, 2) in db["E"]  # original untouched
    assert set(db2["E"].tuples) == {(2, 1)}


def test_with_relations_adds_new():
    db = Database({1, 2}, [])
    db2 = db.with_relations([Relation("T", 1, [(1,)]), Relation("U", 1, [])])
    assert "T" in db2 and "U" in db2


def test_without_and_restrict():
    db = Database({1}, [Relation("A", 1, []), Relation("B", 1, [])])
    assert db.without("A").relation_names() == ("B",)
    assert db.restrict(["A"]).relation_names() == ("A",)


def test_active_domain():
    db = Database({1, 2, 3, 4}, [Relation("E", 2, [(1, 2)])])
    assert db.active_domain() == {1, 2}
    assert db.universe == {1, 2, 3, 4}


def test_equality_and_hash():
    a = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    b = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    c = Database({1, 2, 3}, [Relation("E", 2, [(1, 2)])])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_relation_names_sorted():
    db = Database({1}, [Relation("Z", 1, []), Relation("A", 1, [])])
    assert db.relation_names() == ("A", "Z")


def test_active_domain_cached_per_instance():
    db = Database({1, 2, 3, 4}, [Relation("E", 2, [(1, 2), (2, 3)])])
    first = db.active_domain()
    assert first == frozenset({1, 2, 3})
    assert db.active_domain() is first  # computed once per instance


def test_sorted_universe_cached_and_deterministic():
    db = Database({3, 1, 2}, [])
    ordered = db.sorted_universe()
    assert ordered == (1, 2, 3)
    assert db.sorted_universe() is ordered
    # Functional updates are fresh instances with fresh caches.
    assert db.with_relation(Relation("E", 2, [])).sorted_universe() == (1, 2, 3)
