"""The delta algebra: composition, inverses, batching, transactions.

``Delta`` is a monoid under :meth:`~repro.materialize.delta.Delta.compose`
(with ``Delta.empty()`` as identity) whose action on databases matches
sequential application, and ``inverse(db)`` is the undo element for that
action.  ``MaterializedView.apply_many`` and ``rollback`` are built on
exactly these laws, so they are property-tested here across all three
view semantics (stratified, inflationary, wellfounded).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.semantics import (
    inflationary_semantics,
    is_stratifiable,
    stratified_semantics,
    well_founded_semantics,
)
from repro.graphs import generators as gg
from repro.graphs.encode import graph_to_database
from repro.materialize import Delta, MaterializedView
from repro.queries import tc_complement_stratified, win_move_program

from strategies import (
    databases_and_deltas,
    nonstratifiable_programs,
    random_programs,
    small_databases,
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SEMANTICS = ("stratified", "inflationary", "wellfounded")


@st.composite
def free_deltas(draw, max_values: int = 4):
    """An arbitrary delta over E/2 — not necessarily effective anywhere."""
    pool = st.integers(min_value=1, max_value=max_values)
    pairs = st.tuples(pool, pool)
    ins = draw(st.lists(pairs, max_size=4))
    dels = [t for t in draw(st.lists(pairs, max_size=4)) if t not in set(ins)]
    return Delta(inserts={"E": ins}, deletes={"E": dels})


# ----------------------------------------------------------------------
# The algebra on databases
# ----------------------------------------------------------------------


class TestCompositionLaws:
    @SLOW
    @given(a=free_deltas(), b=free_deltas(), c=free_deltas())
    def test_compose_is_associative(self, a, b, c):
        assert a.compose(b).compose(c) == a.compose(b.compose(c))

    @SLOW
    @given(a=free_deltas())
    def test_empty_is_identity(self, a):
        assert Delta.empty().compose(a) == a
        assert a.compose(Delta.empty()) == a

    @SLOW
    @given(db=small_databases(), a=free_deltas(), b=free_deltas())
    def test_compose_matches_sequential_application(self, db, a, b):
        """Composition acts like sequential application on contents.

        Universes may differ: a fresh value introduced by an ``a``
        insert that ``b`` deletes again is cancelled by the composition
        but sticks sequentially (universes never shrink) — the
        transaction semantics, asserted as containment.
        """
        combined = db.apply_delta(a.compose(b), invalidate_plans=False)
        stepped = db.apply_delta(a, invalidate_plans=False).apply_delta(
            b, invalidate_plans=False
        )
        assert combined["E"].tuples == stepped["E"].tuples
        assert combined.universe <= stepped.universe

    @SLOW
    @given(db=small_databases(), d=free_deltas())
    def test_inverse_restores_contents(self, db, d):
        """``apply(d); apply(d.inverse(db))`` restores every relation.

        The database-aware inverse normalizes first, so the law holds
        for arbitrary (not just effective) deltas.  Universes never
        shrink, so restoration is of relation contents; the universe
        retains any value the round-trip introduced.
        """
        forward = db.apply_delta(d, invalidate_plans=False)
        back = forward.apply_delta(d.inverse(db), invalidate_plans=False)
        assert back["E"].tuples == db["E"].tuples

    @SLOW
    @given(db=small_databases(), d=free_deltas())
    def test_plain_inverse_requires_effectiveness(self, db, d):
        effective = d.normalize(db)
        forward = db.apply_delta(effective, invalidate_plans=False)
        back = forward.apply_delta(effective.inverse(), invalidate_plans=False)
        assert back["E"].tuples == db["E"].tuples


# ----------------------------------------------------------------------
# apply_many == sequential applies, across all three view semantics
# ----------------------------------------------------------------------


def _model(view):
    """A comparable snapshot of a view's maintained model."""
    if view.semantics == "wellfounded":
        return (view.result.true, view.result.undefined)
    return view.result.idb


def _reference_model(program, db, semantics):
    if semantics == "stratified":
        return stratified_semantics(program, db).idb
    if semantics == "inflationary":
        return inflationary_semantics(program, db).idb
    wf = well_founded_semantics(program, db)
    return (wf.true, wf.undefined)


def _batch_body(program, db, deltas, semantics):
    batched = MaterializedView(program, db, semantics=semantics)
    sequential = MaterializedView(program, db, semantics=semantics)
    batched.apply_many(deltas)
    for delta in deltas:
        sequential.apply(delta)
    assert batched.db == sequential.db
    assert _model(batched) == _model(sequential)
    assert _model(batched) == _reference_model(program, batched.db, semantics)
    # The batch is one transaction: at most one undo entry (zero when the
    # whole batch composes to a no-op) vs up to one per sequential delta.
    assert batched.undo_depth <= 1
    assert sequential.undo_depth <= len(deltas)


class TestApplyMany:
    # grow=False below: a fresh universe value that churns away inside
    # the batch is (by design — see Delta.then) absent from the batched
    # universe but permanent in the sequential one, and active-domain
    # completion makes unsafe rules read the difference.  The strict
    # batched == sequential equivalence is the universe-stable law;
    # test_batch_universe_transaction_semantics pins the divergence.

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True),
        dbd=databases_and_deltas(grow=False),
    )
    def test_stratified(self, program, dbd):
        db, deltas = dbd
        if not is_stratifiable(program):
            return
        _batch_body(program, db, deltas, "stratified")

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True),
        dbd=databases_and_deltas(grow=False),
    )
    def test_inflationary(self, program, dbd):
        db, deltas = dbd
        _batch_body(program, db, deltas, "inflationary")

    @SLOW
    @given(program=nonstratifiable_programs(), dbd=databases_and_deltas(grow=False))
    def test_wellfounded(self, program, dbd):
        db, deltas = dbd
        _batch_body(program, db, deltas, "wellfounded")

    def test_batch_universe_transaction_semantics(self):
        """A fresh value that churns away inside a batch never lands."""
        db = graph_to_database(gg.path(3))
        batched = MaterializedView(tc_complement_stratified(), db)
        sequential = MaterializedView(tc_complement_stratified(), db)
        deltas = [Delta.insert("E", (3, 9)), Delta.delete("E", (3, 9))]
        assert batched.apply_many(deltas).is_empty()
        for delta in deltas:
            sequential.apply(delta)
        assert 9 not in batched.db.universe
        assert 9 in sequential.db.universe  # universes never shrink

    def test_empty_batch_is_noop(self):
        view = MaterializedView(
            tc_complement_stratified(), graph_to_database(gg.path(3))
        )
        assert view.apply_many([]).is_empty()
        assert view.undo_depth == 0

    def test_batch_churn_cancels(self):
        """A tuple inserted and deleted within one batch costs nothing."""
        view = MaterializedView(
            tc_complement_stratified(), graph_to_database(gg.path(4))
        )
        before = view.result.idb
        changeset = view.apply_many(
            [Delta.insert("E", (4, 1)), Delta.delete("E", (4, 1))]
        )
        assert changeset.is_empty()
        assert view.result.idb == before
        assert view.applied == 0  # the composed delta was a no-op


# ----------------------------------------------------------------------
# rollback: the undo log in anger
# ----------------------------------------------------------------------


def _rollback_body(program, db, deltas, semantics):
    view = MaterializedView(program, db, semantics=semantics)
    snapshots = [(_model(view), view.db["E"].tuples)]
    for delta in deltas:
        depth = view.undo_depth
        view.apply(delta)
        if view.undo_depth > depth:  # no-op deltas push no undo entry
            snapshots.append((_model(view), view.db["E"].tuples))
    applied = view.undo_depth
    # Unwind half, then the rest; contents must match the snapshots.
    half = applied // 2
    if half:
        view.rollback(half)
        model, edb = snapshots[applied - half]
        assert view.db["E"].tuples == edb
        assert _model(view) == model
    view.rollback(view.undo_depth)
    model, edb = snapshots[0]
    assert view.db["E"].tuples == edb
    assert _model(view) == model
    assert view.undo_depth == 0


class TestRollback:
    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True),
        dbd=databases_and_deltas(grow=False),
    )
    def test_stratified(self, program, dbd):
        db, deltas = dbd
        if not is_stratifiable(program):
            return
        _rollback_body(program, db, deltas, "stratified")

    @SLOW
    @given(program=nonstratifiable_programs(), dbd=databases_and_deltas(grow=False))
    def test_wellfounded(self, program, dbd):
        db, deltas = dbd
        _rollback_body(program, db, deltas, "wellfounded")

    def test_rollback_too_deep_raises(self):
        view = MaterializedView(
            win_move_program(), graph_to_database(gg.path(3)),
            semantics="wellfounded",
        )
        view.apply(Delta.insert("E", (3, 1)))
        with pytest.raises(ValueError):
            view.rollback(2)

    def test_rollback_zero_is_noop(self):
        view = MaterializedView(
            win_move_program(), graph_to_database(gg.path(3)),
            semantics="wellfounded",
        )
        assert view.rollback(0).is_empty()

    def test_undo_limit_bounds_the_log(self):
        """Beyond the limit the oldest entries fall off; newer rollbacks
        still work, older ones are gone."""
        db = graph_to_database(gg.path(5))
        view = MaterializedView(
            win_move_program(), db, semantics="wellfounded", undo_limit=2
        )
        view.apply(Delta.insert("E", (5, 1)))
        view.apply(Delta.delete("E", (1, 2)))
        after_two = view.db["E"].tuples
        view.apply(Delta.delete("E", (2, 3)))
        assert view.undo_depth == 2  # the first entry was dropped
        view.rollback(1)
        assert view.db["E"].tuples == after_two
        with pytest.raises(ValueError):
            view.rollback(2)

    def test_rollback_of_batch_is_one_step(self):
        db = graph_to_database(gg.path(4))
        view = MaterializedView(tc_complement_stratified(), db)
        before = view.result.idb
        view.apply_many([Delta.insert("E", (4, 1)), Delta.delete("E", (2, 3))])
        assert view.undo_depth == 1
        view.rollback(1)
        assert view.result.idb == before
        assert view.db["E"].tuples == db["E"].tuples
