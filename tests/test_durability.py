"""Durability of the write-ahead log: fsync discipline and crash replay.

The append/snapshot/meta paths must fsync (a) every file of a committed
artefact, (b) the artefact's own directory, and (c) the parent directory
whose entry the atomic rename changed — otherwise a power cut after the
ack can surface a committed-looking entry with empty CSVs, or lose the
rename itself.  These tests enumerate the fsync calls by path instead of
trusting the happy path.
"""

from __future__ import annotations

import os

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.materialize.delta import Delta
from repro.server.wal import DeltaLog


def _db(edges, universe):
    return Database(frozenset(universe), [Relation("E", 2, set(edges))])


@pytest.fixture
def fsynced(monkeypatch):
    """Record the real path of every fd passed to os.fsync."""
    calls = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        try:
            calls.append(os.path.realpath("/proc/self/fd/%d" % fd))
        except OSError:
            calls.append("<unknown>")
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    return calls


class TestFsyncEnumeration:
    def test_append_fsyncs_entry_files_entry_dir_and_wal_dir(
        self, tmp_path, fsynced
    ):
        log = DeltaLog.initialise(
            tmp_path / "v", "v", "T(X,Y) :- E(X,Y).", "stratified", None,
            _db([(1, 2)], range(3)),
        )
        fsynced.clear()
        log.append(1, Delta.insert("E", (0, 1)))
        entry = tmp_path / "v" / "wal" / "00000001"
        assert entry.is_dir()
        synced = set(fsynced)
        # every CSV file of the entry was fsync'd (under its tmp name)
        csvs = [p.name for p in entry.iterdir()]
        assert csvs, "append wrote no delta files"
        for name in csvs:
            assert any(p.endswith("/" + name) for p in synced), name
        # the entry directory itself, and the WAL directory whose entry
        # the rename changed
        assert any(p.endswith(".tmp-00000001") for p in synced)
        assert str(entry.parent) in synced

    def test_snapshot_and_meta_replace_are_fsynced(self, tmp_path, fsynced):
        log = DeltaLog.initialise(
            tmp_path / "v", "v", "T(X,Y) :- E(X,Y).", "stratified", None,
            _db([(1, 2)], range(3)),
        )
        log.append(1, Delta.insert("E", (0, 1)))
        fsynced.clear()
        log.snapshot(1, _db([(1, 2), (0, 1)], range(3)))
        synced = set(fsynced)
        # snapshot files + its directory, under the pre-rename tmp name
        assert any("tmp-snapshot-00000001" in p and p.endswith(".csv") for p in synced)
        assert any(p.endswith(".tmp-snapshot-00000001") for p in synced)
        # meta.json contents, then the state dir for both renames
        assert any(p.endswith("meta.json.tmp") for p in synced)
        assert str(tmp_path / "v") in synced


class TestCrashReplay:
    def test_torn_append_is_invisible_to_recovery(self, tmp_path):
        log = DeltaLog.initialise(
            tmp_path / "v", "v", "T(X,Y) :- E(X,Y).", "stratified", None,
            _db([(1, 2)], range(3)),
        )
        log.append(1, Delta.insert("E", (0, 1)))
        # a crash mid-append leaves a .tmp- directory that never renamed
        torn = tmp_path / "v" / "wal" / ".tmp-00000002"
        torn.mkdir()
        (torn / "E.csv").write_text("+,0,2\n")
        rec = log.recover()
        assert [seq for seq, _ in rec.entries] == [1]

    def test_recovery_replays_to_the_pre_crash_state(self, tmp_path):
        db = _db([(i, i + 1) for i in range(4)], range(6))
        log = DeltaLog.initialise(
            tmp_path / "v", "v", "T(X,Y) :- E(X,Y).", "stratified", None, db
        )
        deltas = [
            Delta.insert("E", (4, 5)),
            Delta.delete("E", (1, 2)),
            Delta(inserts={"E": [(1, 2)]}, deletes={"E": [(0, 1)]}),
        ]
        expected = db
        for seq, delta in enumerate(deltas, start=1):
            log.append(seq, delta)
            expected = expected.apply_delta(delta)
        # "crash": recover from a fresh DeltaLog over the same directory
        rec = DeltaLog(tmp_path / "v").recover()
        replayed = rec.db
        for _seq, delta in rec.entries:
            replayed = replayed.apply_delta(delta)
        assert replayed["E"].tuples == expected["E"].tuples
        assert replayed.universe == expected.universe
