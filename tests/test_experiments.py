"""Integration: the E1–E9 experiment suite must reproduce the paper.

These are the heaviest tests in the suite — each one regenerates a whole
experiment and asserts every `ok` cell.  They double as the executable
record behind EXPERIMENTS.md.
"""

import pytest

from repro.bench import all_experiments, experiment
from repro.bench.harness import Table


def test_registry_complete():
    idents = [e.ident for e in all_experiments()]
    assert set(idents) >= {"e%d" % i for i in range(1, 10)}
    assert "perf" in idents  # the planner's compiled-vs-legacy experiment


def test_unknown_experiment():
    with pytest.raises(KeyError):
        experiment("e99")


@pytest.mark.parametrize("ident", ["e%d" % i for i in range(1, 10)])
def test_experiment_reproduces_paper_claim(ident):
    exp = experiment(ident)
    tables = exp.run()
    assert tables, "experiment %s produced no tables" % ident
    for table in tables:
        assert table.all_ok(), "failing rows in %r:\n%s" % (
            table.title,
            table.render(),
        )


class TestHarness:
    def test_row_arity_check(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_all_ok_uses_ok_columns(self):
        table = Table("t", ["value", "ok"])
        table.add("x", True)
        assert table.all_ok()
        table.add("y", False)
        assert not table.all_ok()

    def test_render_contains_cells_and_notes(self):
        table = Table("title", ["col"])
        table.add(42)
        table.note("a note")
        text = table.render()
        assert "42" in text and "a note" in text and "title" in text

    def test_render_markdown(self):
        table = Table("m", ["c1", "c2"])
        table.add(True, 1.25)
        md = table.render_markdown()
        assert md.startswith("### m")
        assert "| yes | 1.25 |" in md

    def test_duplicate_registration_rejected(self):
        from repro.bench.harness import register

        with pytest.raises(ValueError):
            register("e1", "dup", "dup")(lambda: [])
