"""Tests for the fixpoint-comparison utilities (Section 2 definitions)."""

import pytest

from repro.db.relation import Relation
from repro.core.fixpoint import (
    idb_equal,
    idb_intersection,
    idb_leq,
    idb_union,
    incomparable,
    least_among,
    total_idb_size,
)


def val(*tuples):
    return {"T": Relation("T", 1, [(t,) for t in tuples])}


def test_leq_and_equal():
    assert idb_leq(val(1), val(1, 2))
    assert not idb_leq(val(1, 2), val(1))
    assert idb_equal(val(1, 2), val(2, 1))


def test_leq_requires_same_predicates():
    with pytest.raises(ValueError):
        idb_leq(val(1), {"U": Relation("U", 1, [])})


def test_incomparable():
    assert incomparable(val(1), val(2))
    assert not incomparable(val(1), val(1, 2))


def test_intersection_union():
    inter = idb_intersection([val(1, 2), val(2, 3)])
    assert set(inter["T"].tuples) == {(2,)}
    uni = idb_union([val(1), val(2)])
    assert set(uni["T"].tuples) == {(1,), (2,)}


def test_intersection_empty_family_rejected():
    with pytest.raises(ValueError):
        idb_intersection([])
    with pytest.raises(ValueError):
        idb_union([])


def test_least_among():
    family = [val(1), val(1, 2), val(1, 3)]
    assert least_among(family) == val(1)
    # The paper's even-cycle situation: two incomparable fixpoints.
    assert least_among([val(1), val(2)]) is None


def test_total_idb_size():
    assert total_idb_size(val(1, 2, 3)) == 3
