"""Tests for Section 3's fixpoint formula phi_pi.

The paper: "S is a fixpoint of (pi, D) <=> D |= phi_pi(S)", and
pi-UNIQUE-FIXPOINT is definable as (exists! S) phi_pi(S).  We check both
statements by brute force against the SAT-backed analysis.
"""

from itertools import combinations, product

from hypothesis import given, settings

from repro import Database, Relation
from repro.core.grounding import ground_program
from repro.core.satreduction import count_fixpoints_sat, has_unique_fixpoint
from repro.graphs import generators as gg, graph_to_database
from repro.logic.eso import ESOFormula, count_witnesses
from repro.logic.fo import evaluate
from repro.logic.translate import fixpoint_formula
from repro.queries import pi1, toggle_program, transitive_closure_program

from strategies import random_programs, small_databases


def all_unary_subsets(universe):
    elements = sorted(universe)
    for size in range(len(elements) + 1):
        for chosen in combinations(elements, size):
            yield {(e,) for e in chosen}


def test_phi_pi_characterises_fixpoints_of_pi1():
    program = pi1()
    phi = fixpoint_formula(program)
    for graph in (gg.path(3), gg.cycle(3), gg.cycle(4)):
        db = graph_to_database(graph)
        gp = ground_program(program, db)
        for subset in all_unary_subsets(db.universe):
            candidate = db.with_relation(Relation("T", 1, subset))
            via_formula = evaluate(phi, candidate)
            via_ground = gp.is_fixpoint({("T", t) for t in subset})
            assert via_formula == via_ground


def test_phi_pi_on_toggle_never_satisfied():
    program = toggle_program()
    phi = fixpoint_formula(program)
    db = Database({1, 2}, [])
    for subset in all_unary_subsets(db.universe):
        candidate = db.with_relation(Relation("T", 1, subset))
        assert not evaluate(phi, candidate)


def test_eso_witness_count_equals_fixpoint_count():
    """(exists S) phi_pi(S) has exactly as many witnesses as fixpoints."""
    program = pi1()
    eso = ESOFormula((("T", 1),), fixpoint_formula(program))
    for graph in (gg.path(3), gg.cycle(3), gg.cycle(4)):
        db = graph_to_database(graph)
        assert count_witnesses(eso, db) == count_fixpoints_sat(program, db)


def test_unique_fixpoint_as_unique_witness():
    """Theorem 2's logical form: unique fixpoint <=> exactly one witness."""
    program = pi1()
    eso = ESOFormula((("T", 1),), fixpoint_formula(program))
    for graph in (gg.path(4), gg.cycle(4), gg.cycle(3)):
        db = graph_to_database(graph)
        assert (count_witnesses(eso, db) == 1) == has_unique_fixpoint(program, db)


def test_multi_idb_formula():
    program = transitive_closure_program()
    phi = fixpoint_formula(program)
    db = graph_to_database(gg.path(3))
    from repro.core.semantics import naive_least_fixpoint

    least = naive_least_fixpoint(program, db).idb
    assert evaluate(phi, db.with_relations(least.values()))
    assert not evaluate(phi, db.with_relation(Relation("S", 2, [])))


@given(random_programs(max_rules=2), small_databases(max_size=2))
@settings(max_examples=15)
def test_property_phi_pi_matches_ground_check(program, db):
    """On exhaustively enumerable candidates, phi_pi and the ground system
    agree about fixpointhood."""
    phi = fixpoint_formula(program)
    gp = ground_program(program, db)
    universe = sorted(db.universe)
    # Probe a few structured candidates: empty, full, and the derivables.
    candidates = [set(), set(gp.derivable)]
    candidates.append(
        {(p, t) for p in program.idb_predicates
         for t in product(universe, repeat=program.arity(p))}
    )
    for atoms in candidates:
        relations = gp.to_idb_map(atoms)
        shadow = db.with_relations(relations.values())
        assert evaluate(phi, shadow) == gp.is_fixpoint(atoms)
