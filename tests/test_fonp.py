"""Tests for the FO(NP) machinery and the paper's example query."""

import pytest

from repro import Database, Relation
from repro.core.terms import Variable
from repro.graphs import generators as gg, graph_to_database
from repro.logic.fo import AtomF, EqF, Exists, ForAll, IFP, Top
from repro.logic.fonp import (
    FONPQuery,
    oracle_3colorable_without,
    oracle_hamiltonian_without,
    paper_example_query,
)

X, Y = Variable("X"), Variable("Y")


class TestFONPEvaluation:
    def test_plain_fo_still_works(self):
        query = FONPQuery(Exists(X, AtomF("E", [X, X])), {})
        loopy = Database({1}, [Relation("E", 2, [(1, 1)])])
        plain = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        assert query.holds(loopy)
        assert not query.holds(plain)

    def test_oracle_dispatch_and_memoisation(self):
        seen = []

        def oracle(db, args):
            seen.append(args)
            return args[0] == 1

        query = FONPQuery(Exists(X, AtomF("MAGIC", [X])), {"MAGIC": oracle})
        db = Database({1, 2, 3}, [])
        assert query.holds(db)
        assert query.calls == len(set(seen))
        query.holds(db)  # memoised: no new calls
        assert query.calls == len(set(seen))
        query.reset()
        assert query.calls == 0

    def test_equality_under_quantifier(self):
        query = FONPQuery(ForAll(X, Exists(Y, EqF(X, Y))), {})
        assert query.holds(Database({1, 2}, []))

    def test_ifp_rejected(self):
        node = IFP("S", (X,), Top(), (X,))
        query = FONPQuery(Exists(X, node), {})
        with pytest.raises(TypeError):
            query.holds(Database({1}, []))


class TestOracles:
    def test_edge_removal_oracles(self):
        # K_4: not 3-colorable, but drop any edge and it is.
        db = graph_to_database(gg.complete(4))
        assert oracle_3colorable_without(db, (1, 2))
        # C_4 is Hamiltonian; removing an edge of the circuit kills it.
        db = graph_to_database(gg.cycle(4))
        assert not oracle_hamiltonian_without(db, (1, 2))


class TestPaperExample:
    """'Is there an edge whose removal leaves the graph 3-colorable but
    not Hamiltonian?'"""

    def test_positive_instance(self):
        # K_4 (both directions): removing the undirected edge {1,2} gives a
        # graph that is 3-colorable; is it still Hamiltonian?  K_4 minus an
        # edge keeps a Hamilton circuit, so go smaller: the directed C_4 is
        # Hamiltonian and 2-colorable; removing any edge breaks the circuit
        # while staying colorable => positive instance.
        query = paper_example_query()
        db = graph_to_database(gg.cycle(4))
        assert query.holds(db)
        assert query.calls >= 1

    def test_negative_instance_no_edges(self):
        query = paper_example_query()
        db = Database({1, 2}, [Relation("E", 2, [])])
        assert not query.holds(db)

    def test_negative_instance_still_hamiltonian(self):
        # Two parallel 2-cycles between 1-2: removing one directed pair
        # leaves... use K_3 both directions: minus one undirected edge the
        # remaining graph still has the triangle? No: K_3 minus {1,2} has
        # edges 1-3, 2-3 only: no Hamilton circuit, 3-colorable => still a
        # positive instance.  A genuinely negative one: a single 2-cycle
        # (1<->2): removing it disconnects, graph is 3-colorable and not
        # Hamiltonian... positive again.  Truly negative: graph where every
        # edge removal leaves it Hamiltonian: two nodes with double edges
        # is impossible in our simple digraph; use the 1-node loop.
        query = paper_example_query()
        loop = Database({1}, [Relation("E", 2, [(1, 1)])])
        # Removing the loop leaves the trivially 3-colorable single node,
        # which has no Hamilton circuit (no loop) => actually positive.
        assert query.holds(loop)
        # Negative requires no edge at all or every removal Hamiltonian:
        # K_4 with all edges doubled stays Hamiltonian after one removal.
        db = graph_to_database(gg.complete(4))
        assert not query.holds(db)  # K_4 minus one edge is still Hamiltonian

    def test_call_budget_is_polynomial(self):
        query = paper_example_query()
        graph = gg.cycle(4)
        db = graph_to_database(graph)
        query.holds(db)
        # At most 2 oracle calls per universe pair.
        assert query.calls <= 2 * len(graph.nodes) ** 2
