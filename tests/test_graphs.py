"""Tests for the graph substrate: digraph, generators, algorithms, encode."""

import pytest

from repro.db.database import Database
from repro.graphs import generators as gg
from repro.graphs.algorithms import (
    INFINITY,
    bfs_distances,
    count_3colorings,
    distance,
    distance_query,
    enumerate_3colorings,
    hamilton_circuits,
    has_unique_hamilton_circuit,
    is_3colorable,
    transitive_closure,
)
from repro.graphs.digraph import Digraph
from repro.graphs.encode import database_to_graph, graph_to_database


class TestDigraph:
    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Digraph([1], [(1, 2)])

    def test_successors_predecessors(self):
        g = gg.path(3)
        assert g.successors(1) == {2}
        assert g.predecessors(3) == {2}
        assert g.successors(3) == frozenset()

    def test_reversed(self):
        assert gg.path(2).reversed().edges == frozenset({(2, 1)})

    def test_undirected_edges_drop_loops_and_directions(self):
        g = Digraph([1, 2], [(1, 2), (2, 1), (1, 1)])
        assert g.undirected_edges() == {frozenset({1, 2})}

    def test_union(self):
        g = gg.path(2).union(gg.cycle(3))
        assert len(g.nodes) == 3
        assert (3, 1) in g.edges


class TestGenerators:
    def test_path_shape(self):
        g = gg.path(5)
        assert len(g.nodes) == 5 and len(g.edges) == 4

    def test_cycle_shape(self):
        g = gg.cycle(5)
        assert len(g.edges) == 5
        assert (5, 1) in g.edges

    def test_disjoint_cycles(self):
        g = gg.disjoint_cycles(3, length=4)
        assert len(g.nodes) == 12 and len(g.edges) == 12
        # No edges between copies.
        for u, v in g.edges:
            assert (u - 1) // 4 == (v - 1) // 4

    def test_complete(self):
        assert len(gg.complete(4).edges) == 12

    def test_wheel_colorability_parity(self):
        assert not is_3colorable(gg.wheel(5))
        assert is_3colorable(gg.wheel(6))

    def test_petersen_props(self):
        g = gg.petersen()
        assert len(g.nodes) == 10
        assert len(g.undirected_edges()) == 15
        assert is_3colorable(g)

    def test_bipartite(self):
        g = gg.bipartite_complete(2, 3)
        assert len(g.undirected_edges()) == 6

    def test_grid(self):
        g = gg.grid(2, 3)
        assert len(g.nodes) == 6 and len(g.edges) == 7

    def test_random_digraph_deterministic(self):
        assert gg.random_digraph(6, 0.4, seed=1) == gg.random_digraph(6, 0.4, seed=1)
        assert gg.random_digraph(6, 0.4, seed=1) != gg.random_digraph(6, 0.4, seed=2)

    def test_random_dag_is_acyclic(self):
        g = gg.random_dag(6, 0.5, seed=0)
        assert all(u < v for u, v in g.edges)

    def test_hypercube(self):
        g = gg.hypercube(3)
        assert len(g.nodes) == 8
        assert all(
            sum(a != b for a, b in zip(u, v)) == 1 for u, v in g.edges
        )

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            gg.path(0)
        with pytest.raises(ValueError):
            gg.random_digraph(3, 1.5, seed=0)


class TestAlgorithms:
    def test_bfs_distances(self):
        d = bfs_distances(gg.path(4), 1)
        assert d == {2: 1, 3: 2, 4: 3}

    def test_self_distance_needs_cycle(self):
        assert 1 not in bfs_distances(gg.path(3), 1)
        assert bfs_distances(gg.cycle(3), 1)[1] == 3

    def test_distance_inf(self):
        assert distance(gg.path(3), 3, 1) is INFINITY

    def test_transitive_closure(self):
        tc = transitive_closure(gg.path(3))
        assert tc == {(1, 2), (1, 3), (2, 3)}

    def test_distance_query_semantics(self):
        dq = distance_query(gg.path(3))
        assert (1, 2, 1, 3) in dq      # 1 <= 2
        assert (1, 3, 1, 2) not in dq  # 2 > 1
        assert (1, 3, 3, 1) in dq      # 2 <= infinity
        assert (3, 1, 1, 2) not in dq  # no path 3 -> 1 at all

    def test_coloring_counts(self):
        triangle = gg.cycle(3).union(gg.cycle(3).reversed())
        assert count_3colorings(triangle) == 6
        assert count_3colorings(gg.complete(4)) == 0
        assert count_3colorings(Digraph([1], [])) == 3

    def test_colorings_are_proper(self):
        g = gg.wheel(6)
        for coloring in enumerate_3colorings(g):
            for pair in g.undirected_edges():
                u, v = tuple(pair)
                assert coloring[u] != coloring[v]

    def test_hamilton_circuits(self):
        assert len(hamilton_circuits(gg.cycle(4))) == 1
        assert has_unique_hamilton_circuit(gg.cycle(4))
        assert not has_unique_hamilton_circuit(gg.path(4))
        assert len(hamilton_circuits(gg.complete(4))) == 6


class TestEncode:
    def test_roundtrip(self):
        g = gg.random_digraph(5, 0.3, seed=7)
        assert database_to_graph(graph_to_database(g)) == g

    def test_isolated_nodes_stay_in_universe(self):
        g = Digraph([1, 2, 3], [(1, 2)])
        db = graph_to_database(g)
        assert db.universe == {1, 2, 3}

    def test_arity_check(self):
        db = Database({1}, [__import__("repro").Relation("E", 1, [(1,)])])
        with pytest.raises(ValueError):
            database_to_graph(db)
