"""Tests for the grounder and GroundProgram."""

from hypothesis import given

from repro import Database, Relation, parse_program
from repro.core.grounding import ground_program
from repro.core.operator import empty_idb, theta

from strategies import random_programs, small_databases


def test_pi1_grounding(pi1_program, path4_db):
    gp = ground_program(pi1_program, path4_db)
    # One ground instance per edge: T(x) <- not T(y) for each E(y, x).
    assert len(gp.rules) == 3
    assert gp.derivable == {("T", (2,)), ("T", (3,)), ("T", (4,))}


def test_ground_rule_shape(pi1_program, path4_db):
    gp = ground_program(pi1_program, path4_db)
    rule = gp.by_head[("T", (2,))][0]
    assert rule.pos == ()
    assert rule.neg == (("T", (1,)),)


def test_edb_filters_resolved_at_ground_time():
    p = parse_program("T(X) :- E(X, Y), X != Y, !V(X).")
    db = Database(
        {1, 2, 3},
        [Relation("E", 2, [(1, 2), (2, 2), (3, 1)]), Relation("V", 1, [(3,)])],
    )
    gp = ground_program(p, db)
    # (1,2): ok.  (2,2): killed by X != Y.  (3,1): killed by V(3).
    assert gp.derivable == {("T", (1,))}
    assert gp.rules[0].neg == ()  # EDB negation resolved away


def test_idb_atoms_stay_symbolic(tc_program, path4_db):
    gp = ground_program(tc_program, path4_db)
    recursive = [r for r in gp.rules if r.pos]
    assert recursive  # S(x,y) <- E(x,z), S(z,y) instances keep S symbolic
    for r in recursive:
        assert all(pred == "S" for pred, _ in r.pos)


def test_duplicate_ground_rules_collapse():
    p = parse_program("T(X) :- E(X, Y). T(X) :- E(X, Z).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    gp = ground_program(p, db)
    assert len(gp.rules) == 1


def test_atom_space_size(pi1_program, path4_db):
    gp = ground_program(pi1_program, path4_db)
    assert gp.atom_space_size() == 4  # |A|^1


def test_is_fixpoint_agrees_with_theta(pi1_program, path4_db):
    gp = ground_program(pi1_program, path4_db)
    assert gp.is_fixpoint({("T", (2,)), ("T", (4,))})
    assert not gp.is_fixpoint({("T", (2,))})


def test_idb_map_conversions(pi1_program, path4_db):
    gp = ground_program(pi1_program, path4_db)
    atoms = {("T", (2,)), ("T", (4,))}
    idb = gp.to_idb_map(atoms)
    assert set(idb["T"].tuples) == {(2,), (4,)}
    assert gp.from_idb_map(idb) == atoms


def test_bodyless_rule_with_head_constant():
    p = parse_program("G(X, 1, Y).")
    db = Database({0, 1}, [])
    gp = ground_program(p, db)
    assert len(gp.derivable) == 4
    assert all(values[1] == 1 for _, values in gp.derivable)


@given(random_programs(), small_databases())
def test_ground_fixpoint_check_matches_theta(program, db):
    """The ground system and Theta agree on what a fixpoint is."""
    gp = ground_program(program, db)
    # Use Theta's own first two iterates as probe valuations.
    probes = [empty_idb(program)]
    probes.append(theta(program, db, probes[0]))
    probes.append(theta(program, db, probes[1]))
    for probe in probes:
        via_theta = theta(program, db, probe) == {
            p: r.with_name(p) for p, r in probe.items()
        }
        via_ground = gp.is_fixpoint(gp.from_idb_map(probe))
        assert via_theta == via_ground


@given(random_programs(), small_databases())
def test_derivable_upper_bounds_theta(program, db):
    """Theta's output (on any input) only contains derivable atoms."""
    gp = ground_program(program, db)
    for probe in (empty_idb(program), theta(program, db, empty_idb(program))):
        out = theta(program, db, probe)
        assert gp.from_idb_map(out) <= gp.derivable
