"""Tests: delta-driven inflationary evaluation equals the reference engine."""

from hypothesis import given, settings

from repro import Database, Relation, parse_program
from repro.core.fixpoint import idb_equal
from repro.core.semantics import (
    incremental_inflationary_semantics,
    inflationary_semantics,
)
from repro.graphs import generators as gg, graph_to_database
from repro.queries import distance_program, pi1

from strategies import random_programs, small_databases


def test_tc_agrees(tc_program, path4_db):
    a = inflationary_semantics(tc_program, path4_db)
    b = incremental_inflationary_semantics(tc_program, path4_db)
    assert idb_equal(a.idb, b.idb)
    assert a.rounds == b.rounds


def test_pi1_agrees_on_paths_and_cycles():
    program = pi1()
    for graph in (gg.path(5), gg.cycle(3), gg.cycle(4), gg.disjoint_cycles(2)):
        db = graph_to_database(graph)
        a = inflationary_semantics(program, db)
        b = incremental_inflationary_semantics(program, db)
        assert idb_equal(a.idb, b.idb)


def test_distance_program_agrees():
    db = graph_to_database(gg.path(5))
    a = inflationary_semantics(distance_program(), db)
    b = incremental_inflationary_semantics(distance_program(), db)
    assert idb_equal(a.idb, b.idb)
    assert a.rounds == b.rounds


def test_toggle_rule_fires_only_round_one():
    """Rules with no positive IDB atoms contribute only in round 1 —
    the soundness observation the engine rests on."""
    p = parse_program("T(X) :- !T(Y).")
    db = Database({1, 2, 3}, [])
    result = incremental_inflationary_semantics(p, db)
    assert set(result.carrier_value.tuples) == {(1,), (2,), (3,)}
    assert result.rounds == 1


def test_empty_result():
    p = parse_program("T(X) :- E(X, X).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    result = incremental_inflationary_semantics(p, db)
    assert len(result.carrier_value) == 0
    assert result.rounds == 0


@given(random_programs(), small_databases())
@settings(max_examples=40)
def test_property_equals_reference_engine(program, db):
    """The load-bearing equivalence, over random DATALOG¬ programs."""
    a = inflationary_semantics(program, db)
    b = incremental_inflationary_semantics(program, db)
    assert idb_equal(a.idb, b.idb)
    assert a.rounds == b.rounds
