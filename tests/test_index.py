"""Unit tests for hash indexes."""

import pytest

from repro.db.index import HashIndex
from repro.db.relation import Relation


def test_lookup():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    idx = HashIndex(rel, [0])
    assert sorted(idx.lookup((1,))) == [(1, 2), (1, 3)]
    assert idx.lookup((9,)) == []


def test_compound_key():
    rel = Relation("E", 3, [(1, 2, 3), (1, 2, 4)])
    idx = HashIndex(rel, [0, 1])
    assert len(idx.lookup((1, 2))) == 2
    assert (1, 2) in idx


def test_empty_key_indexes_everything():
    rel = Relation("E", 2, [(1, 2), (3, 4)])
    idx = HashIndex(rel, [])
    assert len(idx.lookup(())) == 2


def test_len_counts_tuples():
    rel = Relation("E", 2, [(1, 2), (3, 4)])
    assert len(HashIndex(rel, [0])) == 2


def test_bad_column():
    with pytest.raises(IndexError):
        HashIndex(Relation("E", 2, []), [7])


def test_keys():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    idx = HashIndex(rel, [0])
    assert set(idx.keys()) == {(1,), (2,)}


# ----------------------------------------------------------------------
# Index caching on Relation (regression tests for the planner refactor)
# ----------------------------------------------------------------------


def test_index_on_reuses_cached_index():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    first = rel.index_on((0,))
    assert rel.index_on((0,)) is first  # object identity: no rebuild
    assert rel.index_on([0]) is first  # column spec is normalised
    assert sorted(first.lookup((1,))) == [(1, 2), (1, 3)]


def test_index_on_distinct_columns_are_distinct_indexes():
    rel = Relation("E", 2, [(1, 2), (2, 3)])
    by_first = rel.index_on((0,))
    by_second = rel.index_on((1,))
    assert by_first is not by_second
    assert by_second.lookup((2,)) == [(1, 2)]
    assert rel.index_on(()) is rel.index_on(())


def test_derived_relations_get_fresh_indexes():
    """No stale-index bug when the IDB grows between rounds.

    union/add/difference/with_tuples return *new* Relation objects, so
    the grown relation must not inherit the old (smaller) index.
    """
    old = Relation("T", 1, [(1,)])
    old_index = old.index_on((0,))
    assert old_index.lookup((2,)) == []

    grown = old.union(Relation("T", 1, [(2,)]))
    assert grown is not old
    grown_index = grown.index_on((0,))
    assert grown_index is not old_index
    assert grown_index.lookup((2,)) == [(2,)]
    # The old relation's cached index is untouched.
    assert old.index_on((0,)) is old_index
    assert old.index_on((0,)).lookup((2,)) == []

    shrunk = grown.difference(Relation("T", 1, [(1,)]))
    assert shrunk.index_on((0,)).lookup((1,)) == []


def test_with_name_keeps_cache_only_when_name_unchanged():
    rel = Relation("T", 1, [(1,)])
    index = rel.index_on((0,))
    assert rel.with_name("T") is rel  # cache (and object) survive
    renamed = rel.with_name("T__delta")
    assert renamed is not rel
    assert renamed.index_on((0,)) is not index  # fresh object, fresh cache


def test_index_cache_does_not_affect_equality_or_hash():
    plain = Relation("E", 2, [(1, 2)])
    indexed = Relation("E", 2, [(1, 2)])
    indexed.index_on((0,))
    assert plain == indexed
    assert hash(plain) == hash(indexed)


def test_index_project_returns_matched_projections():
    rel = Relation("S", 3, [(1, 2, 3), (1, 5, 6), (2, 7, 8)])
    index = rel.index_on((0,))
    assert index.project((1,), (1, 2)) == {(2, 3), (5, 6)}
    assert index.project((1,), (2,)) == {(3,), (6,)}
    assert index.project((9,), (1, 2)) == frozenset()


# ----------------------------------------------------------------------
# Patched derivation (cache inheritance on evolving relations)
# ----------------------------------------------------------------------


def test_patched_index_equals_rebuilt():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    parent = HashIndex(rel, [0])
    added = frozenset({(1, 4), (3, 1)})
    removed = frozenset({(1, 2), (2, 3)})
    new_rel = rel.evolve(added, removed)
    patched = HashIndex.patched(parent, added, removed)
    rebuilt = HashIndex(new_rel, [0])
    for key in set(patched.keys()) | set(rebuilt.keys()):
        assert sorted(patched.lookup(key)) == sorted(rebuilt.lookup(key))
    # The parent was not mutated (copy-on-write).
    assert sorted(parent.lookup((1,))) == [(1, 2), (1, 3)]


def test_index_on_derives_from_parent_cache():
    rel = Relation("E", 2, [(1, 2), (2, 3)])
    rel.index_on([0])  # populate the parent cache
    evolved = rel.evolve([(3, 4)], [(1, 2)])
    idx = evolved.index_on([0])
    assert idx.lookup((3,)) == [(3, 4)]
    assert idx.lookup((1,)) == []
    assert sorted(idx.lookup((2,))) == [(2, 3)]


def test_keyed_complement_matches_definition():
    universe = frozenset({1, 2, 3})
    rel = Relation("S", 2, [(1, 2), (1, 3), (2, 1)])
    keyed = rel.keyed_complement_on(universe, (0,), (1,))
    assert keyed.get((1,)) == frozenset({(1,)})
    assert keyed.get((2,)) == frozenset({(2,), (3,)})
    assert keyed.get((3,)) == frozenset({(1,), (2,), (3,)})


def test_keyed_complement_derives_by_patching():
    universe = frozenset({1, 2, 3})
    rel = Relation("S", 2, [(1, 2), (2, 1)])
    keyed = rel.keyed_complement_on(universe, (0,), (1,))
    keyed.get((1,))  # materialise one key
    evolved = rel.evolve([(1, 3), (3, 3)], [(2, 1)])
    derived = evolved.keyed_complement_on(universe, (0,), (1,))
    assert derived is not keyed
    # Patched key: (1, 3) arrived, so 3 left the allowed-set.
    assert derived.get((1,)) == frozenset({(1,)})
    # Touched-but-unmaterialised and untouched keys are computed lazily.
    assert derived.get((2,)) == frozenset({(1,), (2,), (3,)})
    assert derived.get((3,)) == frozenset({(1,), (2,)})
    assert (1,) in keyed.materialised_keys()
    # The parent's allowed-sets were not mutated.
    assert keyed.get((1,)) == frozenset({(1,), (3,)})


def test_keyed_complement_cache_hit_on_same_relation():
    rel = Relation("S", 2, [(1, 2)])
    a = rel.keyed_complement_on({1, 2}, (0,), (1,))
    b = rel.keyed_complement_on({1, 2}, (0,), (1,))
    assert a is b
