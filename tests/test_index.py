"""Unit tests for hash indexes."""

import pytest

from repro.db.index import HashIndex
from repro.db.relation import Relation


def test_lookup():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    idx = HashIndex(rel, [0])
    assert sorted(idx.lookup((1,))) == [(1, 2), (1, 3)]
    assert idx.lookup((9,)) == []


def test_compound_key():
    rel = Relation("E", 3, [(1, 2, 3), (1, 2, 4)])
    idx = HashIndex(rel, [0, 1])
    assert len(idx.lookup((1, 2))) == 2
    assert (1, 2) in idx


def test_empty_key_indexes_everything():
    rel = Relation("E", 2, [(1, 2), (3, 4)])
    idx = HashIndex(rel, [])
    assert len(idx.lookup(())) == 2


def test_len_counts_tuples():
    rel = Relation("E", 2, [(1, 2), (3, 4)])
    assert len(HashIndex(rel, [0])) == 2


def test_bad_column():
    with pytest.raises(IndexError):
        HashIndex(Relation("E", 2, []), [7])


def test_keys():
    rel = Relation("E", 2, [(1, 2), (1, 3), (2, 3)])
    idx = HashIndex(rel, [0])
    assert set(idx.keys()) == {(1,), (2,)}
