"""Property tests for the interned columnar kernel (``repro.db.kernel``).

The kernel's contract has four load-bearing faces, each tested here
with Hypothesis over the shared strategies and — where the behaviour
is backend-sensitive — under both the ``array`` baseline and the numpy
fast path:

* interning is a dense, stable bijection: ids are contiguous,
  first-intern ordered, and ``extern`` inverts ``intern`` exactly;
* a database's symbol table is *identity-shared* across its whole
  derivation family: ``apply_delta`` streams — applied one by one or
  fused through ``Delta.compose`` — keep the same table, so dense ids
  survive update streams;
* WAL replay over interned databases reconstructs exactly the contents
  a live update stream produced, with the replayed family again
  sharing one monotone table;
* CSV persistence cannot tell a code-backed relation from a plain one:
  dumping a relation adopted from the kernel equals dumping its
  decoded twin byte for byte (dump == dump ∘ extern).

The cache-key normalisation regression (``canon_columns`` at the
kernel boundary) rides along at the bottom: every column-spec spelling
must hit the same cached index/complement structure.
"""

from __future__ import annotations

import tempfile
from array import array
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import databases_and_deltas, persistable_values, small_databases

from repro import Relation
from repro.db import kernel
from repro.db.csvio import dump_relation
from repro.db.kernel import RelationCodes, SymbolTable, canon_columns
from repro.server.wal import DeltaLog


BACKENDS = kernel.available_backends()


@pytest.fixture(params=BACKENDS, scope="module")
def backend_name(request):
    """Run the module's tests once per usable kernel backend.

    Module-scoped on purpose: Hypothesis forbids function-scoped
    fixtures under ``@given`` (one fixture lifetime would span many
    examples), and forcing the backend is idempotent process state that
    a wider scope handles correctly.
    """
    previous = kernel.set_backend(request.param)
    yield request.param
    kernel.set_backend(previous)


# ----------------------------------------------------------------------
# Interning: dense ids, exact round trip
# ----------------------------------------------------------------------


@given(st.lists(persistable_values(), unique=True))
def test_intern_assigns_dense_ids_and_extern_inverts(values):
    sym = SymbolTable()
    ids = [sym.intern(v) for v in values]
    assert ids == list(range(len(values)))
    assert [sym.extern(i) for i in ids] == values
    # Re-interning is the identity on ids (monotone, never reassigns).
    assert [sym.intern(v) for v in values] == ids
    assert len(sym) == len(values)


@given(st.lists(persistable_values(), unique=True, min_size=1))
def test_encode_decode_round_trip_both_backends(backend_name, values):
    sym = SymbolTable()
    tuples = [(a, b) for a in values[:3] for b in values[:3]]
    rc = RelationCodes.encode(sym, 2, tuples)
    assert rc.decode() == frozenset(tuples)
    for t in tuples:
        assert rc.contains_tuple(t)
    assert not rc.contains_tuple(("missing-value", "missing-value"))


@given(small_databases())
def test_relation_codes_on_database_table(backend_name, db):
    """``codes_on`` under the database's own table decodes to the tuples."""
    rel = db["E"]
    rc = rel.codes_on(db.symbols())
    assert rc is not None
    assert rc.decode() == frozenset(rel)
    assert len(rc) == len(rel)


# ----------------------------------------------------------------------
# Symbol-table identity under update streams and Delta.compose
# ----------------------------------------------------------------------


@given(databases_and_deltas())
def test_symbol_table_shared_under_delta_streams_and_compose(backend_name, case):
    db, deltas = case
    sym = db.symbols()
    before = {v: sym.intern(v) for v in db.sorted_universe()}

    stepped = db
    for d in deltas:
        stepped = stepped.apply_delta(d, invalidate_plans=False)
    composed = deltas[0]
    for d in deltas[1:]:
        composed = composed.compose(d)
    fused = db.apply_delta(composed.normalize(db), invalidate_plans=False)

    # One table for the whole family, however the stream was applied.
    assert stepped.symbols() is sym
    assert fused.symbols() is sym
    # Monotone: every previously interned value keeps its dense id.
    for v, i in before.items():
        assert sym.intern(v) == i
    # And the two application orders agree on contents.
    assert stepped["E"] == fused["E"]


# ----------------------------------------------------------------------
# WAL replay over interned databases
# ----------------------------------------------------------------------


@given(databases_and_deltas())
@settings(max_examples=15)
def test_wal_replay_matches_live_stream_on_interned_dbs(backend_name, case):
    db, deltas = case
    live = db
    with tempfile.TemporaryDirectory() as tmp:
        log = DeltaLog.initialise(
            Path(tmp) / "view",
            view="v",
            program_text="T(X) :- E(X, Y).",
            semantics="stratified",
            carrier=None,
            db=db,
        )
        for seq, d in enumerate(deltas, start=1):
            log.append(seq, d)
            live = live.apply_delta(d, invalidate_plans=False)

        recovered = log.recover()
        replayed = recovered.db
        base_sym = replayed.symbols()
        for _, d in recovered.entries:
            replayed = replayed.apply_delta(d, invalidate_plans=False)

    assert replayed["E"] == live["E"]
    assert replayed.universe == live.universe
    # The replayed family shares one monotone table with its snapshot.
    assert replayed.symbols() is base_sym
    # Codes built under the replayed table decode to the live contents.
    rc = replayed["E"].codes_on(replayed.symbols())
    assert rc is not None and rc.decode() == frozenset(live["E"])


# ----------------------------------------------------------------------
# CSV persistence: dump == dump ∘ extern
# ----------------------------------------------------------------------


@given(small_databases())
@settings(max_examples=20)
def test_dump_of_code_backed_relation_equals_dump_of_decoded(backend_name, db):
    rel = db["E"]
    sym = db.symbols()
    coded = Relation._from_codes("E", 2, RelationCodes.encode(sym, 2, list(rel)))
    plain = Relation("E", 2, list(rel))
    with tempfile.TemporaryDirectory() as tmp:
        a, b = Path(tmp) / "coded.csv", Path(tmp) / "plain.csv"
        dump_relation(coded, a)
        dump_relation(plain, b)
        assert a.read_bytes() == b.read_bytes()


# ----------------------------------------------------------------------
# Cache-key normalisation at the kernel boundary (regression)
# ----------------------------------------------------------------------


def test_canon_columns_normalises_every_spelling():
    expected = (0, 1)
    assert canon_columns([0, 1]) == expected
    assert canon_columns((0, 1)) == expected
    assert canon_columns(iter((0, 1))) == expected
    assert canon_columns(array("q", [0, 1])) == expected
    if kernel.has_numpy():
        import numpy as np

        out = canon_columns(np.array([0, 1], dtype=np.int64))
        assert out == expected
        assert all(type(c) is int for c in out)


def test_index_and_complement_caches_hit_across_column_spellings(backend_name):
    rel = Relation("R", 2, [(1, 2), (2, 3), (3, 1)])
    idx = rel.index_on((0,))
    assert rel.index_on([0]) is idx
    assert rel.index_on(iter((0,))) is idx
    assert rel.index_on(array("q", [0])) is idx
    if kernel.has_numpy():
        import numpy as np

        assert rel.index_on(np.array([0])) is idx

    uni = frozenset({1, 2, 3})
    keyed = rel.keyed_complement_on(uni, (0,), (1,))
    assert rel.keyed_complement_on(uni, [0], [1]) is keyed
    assert rel.keyed_complement_on(set(uni), iter((0,)), iter((1,))) is keyed


# ----------------------------------------------------------------------
# Dense-join guard: span/cardinality eligibility (regression)
# ----------------------------------------------------------------------


class TestDenseJoinGuard:
    def test_small_spans_always_direct_address(self):
        assert kernel.dense_join_eligible(1, 1)
        assert kernel.dense_join_eligible(kernel._DENSE_JOIN_FLOOR, 1)

    def test_huge_spans_never_direct_address(self):
        assert not kernel.dense_join_eligible(kernel._DENSE_JOIN_LIMIT + 1, 10**6)
        assert not kernel.dense_join_eligible(10**9 + 1, 10**6)

    def test_mid_spans_require_occupancy(self):
        span = kernel._DENSE_JOIN_FLOOR * 2
        dense_enough = span // kernel._DENSE_JOIN_RATIO
        assert kernel.dense_join_eligible(span, dense_enough)
        assert not kernel.dense_join_eligible(span, dense_enough - 1)

    def test_sparse_but_wide_keys_join_correctly(self):
        # Regression: a packed multi-column key over a well-populated
        # table spans a huge code range even when only a handful of keys
        # exist — the dense path used to allocate and zero two span-sized
        # tables for a two-row join.  The guard must route this through
        # the sorted probe path and still match exactly.
        if not kernel.has_numpy():
            pytest.skip("the dense path is numpy-only")
        table = SymbolTable()
        for v in range(300):  # widen the field: per-column ids need 2^12
            table.intern(v)
        lo, hi = (0, 0, 0), (299, 299, 299)
        left = RelationCodes.encode(table, 3, [lo, hi, (7, 7, 7)])
        right = RelationCodes.encode(table, 3, [hi, lo])
        span = int(max(right.key_codes((0, 1, 2)))) + 1
        assert span > kernel._DENSE_JOIN_LIMIT  # genuinely sparse-but-wide
        assert not kernel.dense_join_eligible(span, 2)
        li, ri = kernel.join_codes(left, right, [(0, 0), (1, 1), (2, 2)])
        matched = sorted(
            (int(left.codes[i]), int(right.codes[j])) for i, j in zip(li, ri)
        )
        pairs = [(int(c), int(c)) for c in sorted(int(x) for x in right.codes)]
        assert matched == pairs
