"""Tests for the static analyzer: fixtures per code, the ``.dl``
corpus, the ``lint`` CLI, JSON schema stability, and Hypothesis
properties (the analyzer never raises; clean programs evaluate)."""

import json
from pathlib import Path

import pytest
from hypothesis import given

from repro.analysis import (
    EngineSupport,
    ProgramFacts,
    Severity,
    lint_program,
    lint_source,
)
from repro.analysis.diagnostics import JSON_VERSION
from repro.cli import main
from repro.core.semantics import (
    inflationary_semantics,
    seminaive_least_fixpoint,
    stratified_semantics,
    well_founded_semantics,
)
from repro.db.database import Database
from repro.db.relation import Relation
from strategies import (
    disconnected_programs,
    nonstratifiable_programs,
    positive_programs,
    random_programs,
    small_databases,
)

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "programs"

ALL_CODES = {
    "P001", "P002", "A001", "A002", "V001", "V002", "U001", "R001",
    "S001", "S002", "D001", "D002", "D003", "W001", "W002", "T001",
}

_E2 = Database([1, 2], [Relation("E", 2, [(1, 2)])])
_E1 = Database([1, 2], [Relation("E", 1, [(1,)])])
_E2_EXTRA = Database(
    [1, 2], [Relation("E", 2, [(1, 2)]), Relation("Extra", 1, [(1,)])]
)

# One (triggering, non-triggering) pair of lint inputs per code.  Each
# case is (text, db, carrier).
FIXTURES = {
    "P001": (("T(X :- E(X, Y).", None, None),
             ("T(X) :- E(X, Y).", None, None)),
    "P002": (("% comments only\n", None, None),
             ("T(X) :- E(X, Y).", None, None)),
    "A001": (("P(X) :- Q(X).\nP(X, Y) :- Q(Y).", None, None),
             ("P(X) :- Q(X).\nP(Y) :- Q(Y).", None, None)),
    "A002": (("T(X) :- E(X, Y).", None, "Nope"),
             ("T(X) :- E(X, Y).", None, "T")),
    "V001": (("T(X) :- E(X, Y).", Database([1]), None),
             ("T(X) :- E(X, Y).", _E2, None)),
    "V002": (("T(X) :- E(X, Y).", _E1, None),
             ("T(X) :- E(X, Y).", _E2, None)),
    "U001": (("T(X) :- E(X, Y).", _E2_EXTRA, None),
             ("T(X) :- E(X, Y).", _E2, None)),
    "R001": (("Likes(X, Y) :- Person(X).", None, None),
             ("Likes(X, Y) :- Person(X), Person(Y).", None, None)),
    "S001": (("Win(X) :- Move(X, Y), !Win(Y).", None, None),
             ("T(X) :- E(X, Y), !Base(Y).", None, None)),
    "S002": (("Win(X) :- Move(X, Y), !Win(Y).", None, None),
             ("T(X) :- E(X, Y), !Base(Y).", None, None)),
    "D001": (("Ghost(X) :- Ghost(X).\nHaunted(X) :- Ghost(X).", None, "Haunted"),
             ("T(X) :- E(X, Y).", None, None)),
    "D002": (("Ghost(X) :- Ghost(X).\nHaunted(X) :- Ghost(X).", None, "Haunted"),
             ("T(X) :- E(X, Y).\nT(X) :- T(X).", None, None)),
    "D003": (("A(X) :- E(X, X).\nB(X) :- E(X, X).", None, None),
             ("A(X) :- E(X, X).\nB(X) :- A(X).", None, "B")),
    "W001": (("T(X) :- E(X, Y).\nT(X) :- E(X, Y).", None, None),
             ("T(X) :- E(X, Y).\nT(X) :- E(Y, X).", None, None)),
    "W002": (("T(X) :- E(X, Y).\nT(X) :- E(X, Y), E(Y, X).", None, None),
             ("T(X) :- E(X, Y).\nT(X) :- E(Y, X), E(X, X).", None, None)),
    "T001": (("Tag(X, 1) :- E(X, X).\nTag(X, 'one') :- E(X, X).", None, None),
             ("Tag(X, 1) :- E(X, X).\nTag(X, 2) :- E(X, X).", None, None)),
}


def codes_of(text, db=None, carrier=None):
    return set(lint_source(text, db=db, carrier=carrier).codes())


# ----------------------------------------------------------------------
# Per-code fixtures
# ----------------------------------------------------------------------


def test_every_code_has_fixtures():
    assert set(FIXTURES) == ALL_CODES


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_code_fires_on_positive_fixture(code):
    text, db, carrier = FIXTURES[code][0]
    assert code in codes_of(text, db, carrier)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_code_silent_on_negative_fixture(code):
    text, db, carrier = FIXTURES[code][1]
    assert code not in codes_of(text, db, carrier)


def test_stratifiability_witness_names_the_cycle():
    report = lint_source("Win(X) :- Move(X, Y), !Win(Y).")
    (s001,) = [d for d in report.diagnostics if d.code == "S001"]
    assert "Win -(not)-> Win" in s001.message
    assert "at 1:1" in s001.message
    assert s001.severity is Severity.WARNING


def test_divergence_flags_exactly_the_cycle_predicates():
    # Observer negates into the cycle but is not *on* it: S002 must
    # name Win only — divergence originates on the cycle.
    text = "Win(X) :- Move(X, Y), !Win(Y).\nSafe(X) :- Move(X, X), !Win(X)."
    report = lint_source(text)
    flagged = {d.predicate for d in report.diagnostics if d.code == "S002"}
    assert flagged == {"Win"}


# ----------------------------------------------------------------------
# The .dl corpus
# ----------------------------------------------------------------------


def corpus_header(path):
    """The ``% lint:`` expected codes and ``% carrier:`` of a corpus file."""
    codes, carrier = None, None
    for line in path.read_text().splitlines():
        if line.startswith("% lint:"):
            codes = line.split(":", 1)[1].split()
        elif line.startswith("% carrier:"):
            carrier = line.split(":", 1)[1].strip()
    assert codes is not None, "%s lacks a '%% lint:' header" % path.name
    return (set() if codes == ["clean"] else set(codes)), carrier


def corpus_files():
    files = sorted(CORPUS.glob("*.dl"))
    assert len(files) >= 5, "corpus missing under %s" % CORPUS
    return files


@pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
def test_corpus_file_matches_header(path):
    expected, carrier = corpus_header(path)
    report = lint_source(path.read_text(), carrier=carrier)
    assert set(report.codes()) == expected


@pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
def test_corpus_exit_code_contract(path):
    """Errors exit 1 always; warnings only under --strict; clean never."""
    expected, carrier = corpus_header(path)
    report = lint_source(path.read_text(), carrier=carrier)
    argv = ["lint", str(path)] + (["--carrier", carrier] if carrier else [])
    has_errors = report.errors > 0
    has_warnings = report.warnings > 0
    assert main(argv) == (1 if has_errors else 0)
    assert main(argv + ["--strict"]) == (1 if has_errors or has_warnings else 0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_lint_json_schema(capsys):
    path = CORPUS / "win_move.dl"
    assert main(["lint", str(path), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == JSON_VERSION
    assert set(document) == {"version", "summary", "diagnostics"}
    assert set(document["summary"]) == {
        "class", "rules", "strata", "negative_cycle_predicates",
        "errors", "warnings", "infos",
    }
    assert document["summary"]["class"] == "general"
    assert document["summary"]["strata"] is None
    assert document["summary"]["negative_cycle_predicates"] == ["Win"]
    assert document["diagnostics"], "win-move must produce diagnostics"
    for entry in document["diagnostics"]:
        assert set(entry) == {
            "code", "severity", "message", "line", "column", "rule", "predicate",
        }


def test_cli_lint_human_output_has_spans_and_counts(capsys):
    path = CORPUS / "win_move.dl"
    main(["lint", str(path)])
    out = capsys.readouterr().out
    assert "%s:8:1: warning[S001]" % path in out
    assert "warning(s)" in out and "class=general" in out


def test_cli_lint_db_missing_relation_is_an_error(tmp_path, capsys):
    program = tmp_path / "p.dl"
    program.write_text("T(X) :- E(Y, X), !T(Y).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    assert main(["lint", str(program), "--db", str(dbdir)]) == 1
    assert "V001" in capsys.readouterr().out


def test_cli_lint_db_unused_relation_is_info(tmp_path, capsys):
    program = tmp_path / "p.dl"
    program.write_text("T(X) :- E(Y, X).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    (dbdir / "E.csv").write_text("1,2\n")
    (dbdir / "Extra.csv").write_text("7\n")
    assert main(["lint", str(program), "--db", str(dbdir)]) == 0
    out = capsys.readouterr().out
    assert "U001" in out
    # infos never fail the gate, even under --strict
    assert main(["lint", str(program), "--db", str(dbdir), "--strict"]) == 0


def test_cli_explain_includes_lint_summary(tmp_path, capsys):
    program = tmp_path / "p.dl"
    program.write_text("T(X) :- E(Y, X), !T(Y).\n")
    dbdir = tmp_path / "db"
    dbdir.mkdir()
    (dbdir / "E.csv").write_text("1,2\n")
    assert main(["explain", str(program), "--db", str(dbdir)]) == 0
    out = capsys.readouterr().out
    assert "lint: class=general" in out
    assert "S001" in out


# ----------------------------------------------------------------------
# Report semantics
# ----------------------------------------------------------------------


def test_diagnostics_sorted_by_source_position():
    text = "B(X) :- A(X).\nA(X) :- A(X).\n"
    report = lint_source(text)
    lines = [d.span.line for d in report.diagnostics if d.span is not None]
    assert lines == sorted(lines)


def test_exit_code_matrix():
    clean = lint_source("T(X) :- E(X, Y).", carrier="T")
    warn = lint_source("Win(X) :- Move(X, Y), !Win(Y).")
    err = lint_source("P(X :- Q(X).")
    assert (clean.exit_code(), clean.exit_code(strict=True)) == (0, 0)
    assert (warn.exit_code(), warn.exit_code(strict=True)) == (0, 1)
    assert (err.exit_code(), err.exit_code(strict=True)) == (1, 1)


def test_parse_error_diagnostic_carries_the_span():
    report = lint_source("T(X) :- E(X, Y).\nT(X :- E(X, Y).\n")
    (d,) = report.diagnostics
    assert d.code == "P001" and d.span.line == 2


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------


@given(program=random_programs(include_zeroary=True))
def test_analyzer_total_on_random_programs(program):
    report = lint_program(program)
    assert report.errors == 0
    assert report.program_class is not None


@given(program=nonstratifiable_programs())
def test_analyzer_total_on_nonstratifiable_programs(program):
    report = lint_program(program)
    assert report.errors == 0
    assert "S001" in report.codes()
    assert report.stratum_count is None
    assert report.negative_cycle_predicates


@given(program=disconnected_programs())
def test_analyzer_total_on_disconnected_programs(program):
    assert lint_program(program).errors == 0


@given(program=positive_programs())
def test_analyzer_total_on_positive_programs(program):
    report = lint_program(program)
    assert report.errors == 0
    assert "S001" not in report.codes()
    assert report.program_class == "positive"


@given(program=random_programs(), db=small_databases())
def test_lint_clean_programs_evaluate_on_applicable_engines(program, db):
    report = lint_program(program, db)
    assert report.errors == 0
    support = EngineSupport.for_program(program)
    inflationary_semantics(program, db)
    well_founded_semantics(program, db)
    if support.stratified:
        stratified_semantics(program, db)
    if support.least_fixpoint:
        seminaive_least_fixpoint(program, db)


@given(program=nonstratifiable_programs())
def test_facts_agree_with_report(program):
    facts = ProgramFacts(program)
    report = lint_program(program, facts=facts)
    assert report.program_class == facts.classification.value
    assert set(report.negative_cycle_predicates) == set(
        facts.negative_cycle_predicates
    )
    for cycle in facts.negative_cycles:
        assert any(edge.negative for edge in cycle)
        # each witness is a closed walk
        for prev, nxt in zip(cycle, cycle[1:] + [cycle[0]]):
            assert prev.target == nxt.source
