"""Tests for ESO checking, Skolem normal form, and the Theorem 1 compiler."""

import pytest

from repro import Database, Relation
from repro.core.satreduction import has_fixpoint
from repro.core.terms import Variable
from repro.graphs import generators as gg, graph_to_database
from repro.logic.eso import ESOFormula, ESOSearchLimit, count_witnesses, eso_holds, witnesses
from repro.logic.fo import (
    AtomF,
    Exists,
    ForAll,
    Not,
    and_,
    exists_all,
    forall_all,
    or_,
)
from repro.logic.skolem import skolemize
from repro.reductions.fagin import eso_to_program

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def two_colorable() -> ESOFormula:
    """exists S: every edge is bichromatic under S."""
    matrix = forall_all(
        [X, Y],
        or_(
            Not(AtomF("E", [X, Y])),
            and_(AtomF("S", [X]), Not(AtomF("S", [Y]))),
            and_(Not(AtomF("S", [X])), AtomF("S", [Y])),
        ),
    )
    return ESOFormula((("S", 1),), matrix)


class TestESO:
    def test_two_colorability(self):
        assert eso_holds(two_colorable(), graph_to_database(gg.cycle(4)))
        assert not eso_holds(two_colorable(), graph_to_database(gg.cycle(5)))

    def test_witnesses_are_certificates(self):
        db = graph_to_database(gg.path(3))
        for witness in witnesses(two_colorable(), db):
            side = witness["S"]
            for u, v in gg.path(3).edges:
                assert ((u,) in side) != ((v,) in side)

    def test_count_witnesses(self):
        # On the single edge 1->2 the S-sides: {1},{2},{1,?},... exactly
        # the assignments where ends differ: S in {{1},{2},{1,3},{2,3}}...
        db = graph_to_database(gg.path(2))
        assert count_witnesses(two_colorable(), db) == 2

    def test_free_variables_rejected(self):
        with pytest.raises(ValueError):
            ESOFormula((("S", 1),), AtomF("S", [X]))

    def test_duplicate_so_names_rejected(self):
        with pytest.raises(ValueError):
            ESOFormula((("S", 1), ("S", 2)), forall_all([X], AtomF("S", [X])))

    def test_search_limit(self):
        big = Database(set(range(8)), [Relation("E", 2, [])])
        wide = ESOFormula(
            (("S", 2), ("R", 2)),
            forall_all([X], Exists(Y, AtomF("S", [X, Y]))),
        )
        with pytest.raises(ESOSearchLimit):
            eso_holds(wide, big, limit=1000)


class TestSkolemize:
    def test_already_skolem_form_unchanged_signature(self):
        snf = skolemize(two_colorable())
        assert snf.so_signature == (("S", 1),)
        assert not snf.existentials

    def test_alternation_introduces_graph_relation(self):
        matrix = Exists(Y, ForAll(X, or_(AtomF("E", [Y, X]), AtomF("S", [X]))))
        snf = skolemize(ESOFormula((("S", 1),), matrix))
        assert ("SK1", 1) in snf.so_signature

    def test_equivalence_on_small_structures(self):
        """SNF(psi) and psi agree on every graph we can brute force."""
        formulas = [
            two_colorable(),
            ESOFormula(
                (("S", 1),),
                Exists(Y, ForAll(X, or_(AtomF("E", [Y, X]), AtomF("S", [X])))),
            ),
            ESOFormula(
                (("S", 1),),
                ForAll(
                    X,
                    Exists(
                        Y,
                        or_(
                            and_(AtomF("E", [X, Y]), AtomF("S", [Y])),
                            and_(AtomF("S", [X]), Not(AtomF("S", [Y]))),
                        ),
                    ),
                ),
            ),
        ]
        graphs = [gg.path(2), gg.path(3), gg.cycle(3)]
        for formula in formulas:
            snf = skolemize(formula)
            for graph in graphs:
                db = graph_to_database(graph)
                assert eso_holds(formula, db) == eso_holds(snf.to_eso(), db)

    def test_triple_alternation_terminates(self):
        matrix = ForAll(
            X, Exists(Y, ForAll(Z, or_(AtomF("E", [X, Y]), AtomF("S", [Z]))))
        )
        snf = skolemize(ESOFormula((("S", 1),), matrix))
        # Prefix is forall* exists*.
        assert snf.universals and snf.existentials is not None


class TestFaginCompiler:
    def test_theorem1_equivalence(self):
        comp = eso_to_program(two_colorable())
        for graph in (gg.path(3), gg.cycle(3), gg.cycle(4), gg.cycle(5)):
            db = graph_to_database(graph)
            assert has_fixpoint(comp.program, db) == eso_holds(two_colorable(), db)

    def test_compiled_program_structure(self):
        comp = eso_to_program(two_colorable())
        # S kept nondatabase via S :- S; toggle present.
        assert comp.q_pred in comp.program.idb_predicates
        assert comp.t_pred in comp.program.idb_predicates
        assert "S" in comp.program.idb_predicates
        assert comp.program.edb_predicates == {"E"}

    def test_no_universal_variables_case(self):
        """A purely existential sentence still compiles (dummy Q variable)."""
        sentence = ESOFormula(
            (("S", 1),),
            exists_all([X, Y], and_(AtomF("E", [X, Y]), AtomF("S", [X]))),
        )
        comp = eso_to_program(sentence)
        yes = graph_to_database(gg.path(2))
        no = Database({1, 2}, [Relation("E", 2, [])])
        assert has_fixpoint(comp.program, yes)
        assert not has_fixpoint(comp.program, no)
        assert eso_holds(sentence, yes) and not eso_holds(sentence, no)

    def test_predicate_name_collision_avoided(self):
        """A vocabulary already using Q and T must not be clobbered."""
        sentence = ESOFormula(
            (("S", 1),),
            forall_all([X], or_(Not(AtomF("Q", [X])), AtomF("S", [X]))),
        )
        comp = eso_to_program(sentence)
        assert comp.q_pred != "Q"
        db_yes = Database({1}, [Relation("Q", 1, [(1,)])])
        assert has_fixpoint(comp.program, db_yes) == eso_holds(sentence, db_yes)
