"""Tests for the FO substrate: evaluation, normal forms, IFP."""

import pytest

from repro import Database, Relation
from repro.core.terms import Constant, Variable
from repro.logic.fo import (
    AtomF,
    Bottom,
    EqF,
    Exists,
    ForAll,
    IFP,
    Not,
    Top,
    and_,
    evaluate,
    forall_all,
    free_variables,
    iff,
    ifp_relation,
    implies,
    matrix_to_dnf,
    or_,
    predicates_of,
    query,
    rename_apart,
    to_nnf,
    to_prenex,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def db():
    return Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3)])])


class TestEvaluate:
    def test_atoms_and_equality(self, db):
        assert evaluate(AtomF("E", [1, 2]), db)
        assert not evaluate(AtomF("E", [2, 1]), db)
        assert evaluate(EqF(X, X), db, {X: 1})
        assert evaluate(EqF(X, Constant(1)), db, {X: 1})

    def test_missing_relation_is_empty(self, db):
        assert not evaluate(AtomF("Nope", [1]), db)

    def test_connectives(self, db):
        assert evaluate(and_(Top(), Not(Bottom())), db)
        assert evaluate(or_(Bottom(), AtomF("E", [1, 2])), db)
        assert evaluate(implies(Bottom(), Top()), db)
        assert evaluate(iff(Top(), Top()), db)

    def test_quantifiers(self, db):
        # Every node with an in-edge has an out-edge? false (3 has none).
        f = forall_all([X], implies(
            Exists(Y, AtomF("E", [Y, X])), Exists(Z, AtomF("E", [X, Z]))
        ))
        assert not evaluate(f, db)
        assert evaluate(Exists(X, AtomF("E", [X, 2])), db)

    def test_unbound_variable_raises(self, db):
        with pytest.raises(ValueError):
            evaluate(AtomF("E", [X, Y]), db, {X: 1})

    def test_query(self, db):
        out = query(AtomF("E", [X, Y]), db, [Y, X])
        assert out == {(2, 1), (3, 2)}

    def test_query_free_var_check(self, db):
        with pytest.raises(ValueError):
            query(AtomF("E", [X, Y]), db, [X])


class TestIFP:
    def test_tc_via_ifp(self, db):
        body = or_(
            AtomF("E", [X, Y]),
            Exists(Z, and_(AtomF("E", [X, Z]), AtomF("S", [Z, Y]))),
        )
        node = IFP("S", (X, Y), body, (Constant(1), Constant(3)))
        assert evaluate(node, db)
        assert ifp_relation(node, db) == {(1, 2), (2, 3), (1, 3)}

    def test_nonmonotone_body_allowed(self):
        db = Database({1, 2}, [])
        # S(x) :- !S(y) inflationary: everything enters at stage 1.
        body = Exists(Y, Not(AtomF("S", [Y])))
        node = IFP("S", (X,), body, (Constant(1),))
        assert ifp_relation(node, db) == {(1,), (2,)}

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            IFP("S", (X, Y), Top(), (Constant(1),))

    def test_free_variables_of_ifp(self):
        node = IFP("S", (X,), AtomF("E", [X, Y]), (Z,))
        assert free_variables(node) == {Y, Z}


class TestNormalForms:
    def test_nnf_pushes_negation(self):
        f = Not(and_(AtomF("E", [X, Y]), Not(EqF(X, Y))))
        nnf = to_nnf(f)
        assert isinstance(nnf, type(or_(Top(), Top())))

    def test_nnf_quantifier_duality(self, db):
        f = Not(Exists(X, AtomF("E", [X, X])))
        nnf = to_nnf(f)
        assert isinstance(nnf, ForAll)
        assert evaluate(f, db) == evaluate(nnf, db)

    def test_rename_apart_removes_shadowing(self):
        f = Exists(X, and_(AtomF("E", [X, X]), Exists(X, AtomF("E", [X, X]))))
        renamed = rename_apart(f)
        inner_preds = predicates_of(renamed)
        assert inner_preds == {"E"}
        # Two distinct bound variables now.
        assert isinstance(renamed, Exists)

    def test_prenex_preserves_semantics(self, db):
        f = and_(
            Exists(X, AtomF("E", [X, Constant(2)])),
            ForAll(Y, or_(AtomF("E", [Y, Constant(2)]), Not(AtomF("E", [Y, Constant(2)])))),
        )
        prefix, matrix = to_prenex(f)
        rebuilt = matrix
        for kind, var in reversed(prefix):
            rebuilt = (Exists if kind == "exists" else ForAll)(var, rebuilt)
        assert evaluate(f, db) == evaluate(rebuilt, db)

    def test_prenex_rejects_ifp(self):
        node = IFP("S", (X,), Top(), (Constant(1),))
        with pytest.raises(TypeError):
            to_prenex(Exists(X, node))

    def test_dnf_basic(self):
        matrix = and_(
            or_(AtomF("A", []), AtomF("B", [])),
            AtomF("C", []),
        )
        dnf = matrix_to_dnf(matrix)
        assert len(dnf) == 2
        assert all(any(a.pred == "C" for _, a in d) for d in dnf)

    def test_dnf_drops_contradictions(self):
        matrix = and_(AtomF("A", []), Not(AtomF("A", [])))
        assert matrix_to_dnf(matrix) == []

    def test_dnf_top_bottom(self):
        assert matrix_to_dnf(Top()) == [[]]
        assert matrix_to_dnf(Bottom()) == []

    def test_flattening_constructors(self):
        assert and_() == Top()
        assert or_() == Bottom()
        assert and_(AtomF("A", [])) == AtomF("A", [])
        nested = and_(and_(AtomF("A", []), AtomF("B", [])), AtomF("C", []))
        assert len(nested.subs) == 3
