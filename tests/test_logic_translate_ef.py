"""Tests for the Proposition 1 translations and EF games."""

import pytest
from hypothesis import given, settings

from repro import Database, Relation
from repro.core.fixpoint import idb_equal
from repro.core.semantics import inflationary_semantics
from repro.core.terms import Variable
from repro.graphs import generators as gg, graph_to_database
from repro.logic.ef import ef_equivalent
from repro.logic.fo import AtomF, ForAll, evaluate
from repro.logic.ifp import ifp_stage_count, simultaneous_ifp
from repro.logic.translate import (
    existential_fo_to_program,
    program_to_ifp,
    program_to_ifp_definitions,
    theta_formula,
)
from repro.queries import distance_program, pi1, transitive_closure_program

from strategies import random_programs, small_databases

X = Variable("X")


class TestProp1Forward:
    def test_single_idb_ifp_formula(self):
        program = pi1()
        db = graph_to_database(gg.path(4))
        expected = inflationary_semantics(program, db).carrier_value
        node = program_to_ifp(program, (X,))
        for element in db.universe:
            assert evaluate(node, db, {X: element}) == ((element,) in expected)

    def test_single_idb_required(self):
        with pytest.raises(ValueError):
            program_to_ifp(distance_program(), (X,))

    def test_simultaneous_ifp_matches_engine_on_distance(self):
        program = distance_program()
        db = graph_to_database(gg.path(4))
        defs = program_to_ifp_definitions(program)
        assert idb_equal(
            simultaneous_ifp(db, defs), inflationary_semantics(program, db).idb
        )

    def test_head_constants_handled(self):
        from repro import parse_program

        program = parse_program("T(1) :- E(X, Y). T(X) :- E(X, X).")
        db = Database({1, 2}, [Relation("E", 2, [(2, 2)])])
        defs = program_to_ifp_definitions(program)
        assert idb_equal(
            simultaneous_ifp(db, defs), inflationary_semantics(program, db).idb
        )

    @given(random_programs(max_rules=2), small_databases(max_size=3))
    @settings(max_examples=15)
    def test_property_engine_equals_ifp(self, program, db):
        defs = program_to_ifp_definitions(program)
        assert idb_equal(
            simultaneous_ifp(db, defs), inflationary_semantics(program, db).idb
        )


class TestProp1Backward:
    def test_roundtrip_through_formula(self):
        program = pi1()
        xvars = (Variable("_h0"),)
        formula = theta_formula(program, "T", xvars)
        back = existential_fo_to_program(formula, "T", xvars)
        for graph in (gg.path(4), gg.cycle(3), gg.cycle(4)):
            db = graph_to_database(graph)
            assert idb_equal(
                inflationary_semantics(program, db).idb,
                inflationary_semantics(back, db).idb,
            )

    def test_universal_rejected(self):
        f = ForAll(X, AtomF("E", [X, X]))
        with pytest.raises(ValueError):
            existential_fo_to_program(f, "T", ())

    def test_unsatisfiable_formula_gives_inert_program(self):
        from repro.logic.fo import Bottom

        program = existential_fo_to_program(Bottom(), "T", (X,))
        db = Database({1, 2}, [])
        result = inflationary_semantics(program, db)
        assert len(result.carrier_value) == 0

    def test_free_variable_check(self):
        f = AtomF("E", [X, Variable("Hidden")])
        with pytest.raises(ValueError):
            existential_fo_to_program(f, "T", (X,))

    def test_theta_formula_arity_check(self):
        with pytest.raises(ValueError):
            theta_formula(pi1(), "T", (X, Variable("Y")))


class TestIFPStageCount:
    def test_tc_stages_track_path_length(self):
        program = transitive_closure_program()
        defs = program_to_ifp_definitions(program)
        shallow = ifp_stage_count(graph_to_database(gg.path(3)), defs)
        deep = ifp_stage_count(graph_to_database(gg.path(6)), defs)
        assert deep > shallow


class TestEFGames:
    def test_rank0_is_partial_isomorphism(self):
        a = graph_to_database(gg.path(2))
        b = graph_to_database(gg.path(3))
        assert ef_equivalent(a, b, 0)

    def test_rank2_distinguishes_edge_presence(self):
        """'Some edge exists' is exists-x exists-y E(x,y): quantifier rank
        2, so rank 1 cannot see it but rank 2 can."""
        a = graph_to_database(gg.path(2))
        empty = Database({1, 2}, [Relation("E", 2, [])])
        assert not ef_equivalent(a, empty, 2)
        assert ef_equivalent(a, empty, 1)
        assert ef_equivalent(a, empty, 0)

    def test_small_paths_distinguished_at_low_rank(self):
        a = graph_to_database(gg.path(2))
        b = graph_to_database(gg.path(4))
        # Rank 2 can count out-degrees along a short chain.
        assert not ef_equivalent(a, b, 2)

    def test_long_paths_equivalent_at_low_rank(self):
        a = graph_to_database(gg.path(5))
        b = graph_to_database(gg.path(6))
        assert ef_equivalent(a, b, 1)

    def test_equivalence_is_reflexive_and_symmetric(self):
        a = graph_to_database(gg.cycle(4))
        b = graph_to_database(gg.cycle(5))
        assert ef_equivalent(a, a, 2)
        assert ef_equivalent(a, b, 1) == ef_equivalent(b, a, 1)

    def test_pinned_parameters(self):
        a = graph_to_database(gg.path(3))
        # Pinning endpoint vs middle breaks even rank-0 equivalence when
        # the pinned atoms differ, rank-1 otherwise.
        assert not ef_equivalent(a, a, 1, pinned_left=(1,), pinned_right=(2,))

    def test_unary_structures_threshold(self):
        """Classic: two pure sets are rank-r equivalent iff sizes equal or
        both >= r."""
        def pure_set(n):
            return Database(set(range(n)), [Relation("U", 1, [])])

        assert ef_equivalent(pure_set(3), pure_set(4), 3)
        assert not ef_equivalent(pure_set(2), pure_set(3), 3)
        assert ef_equivalent(pure_set(2), pure_set(3), 2)
