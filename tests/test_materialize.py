"""Materialized-view maintenance equals from-scratch recomputation.

The central property: after *any* sequence of EDB deltas, a
``MaterializedView``'s result is extensionally equal to evaluating the
program from scratch on the mutated database — for stratified views
(counting + DRed maintenance) and inflationary views (maintained when
semipositive, honestly recomputed otherwise), across insert-only,
delete-only and mixed sequences, negation-heavy library programs, and
zero-ary relations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Database, Relation, parse_program
from repro.core.semantics import (
    NotStratifiableError,
    inflationary_semantics,
    is_stratifiable,
    stratified_semantics,
)
from repro.graphs import generators as gg
from repro.graphs.encode import graph_to_database
from repro.materialize import ChangeSet, Delta, MaterializedView
from repro.queries import (
    distance_program,
    pi2,
    tc_complement_stratified,
    win_move_program,
)
from strategies import databases_and_deltas, random_programs

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Delta value semantics
# ----------------------------------------------------------------------


class TestDelta:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Delta(inserts={"E": [(1, 2)]}, deletes={"E": [(1, 2)]})

    def test_normalize_drops_noops(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        delta = Delta(inserts={"E": [(1, 2), (2, 1)]}, deletes={"E": [(2, 2)]})
        eff = delta.normalize(db)
        assert eff.inserts("E") == frozenset({(2, 1)})
        assert eff.deletes("E") == frozenset()

    def test_then_composes_like_sequential_application(self):
        db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3)])])
        a = Delta(inserts={"E": [(3, 1)]}, deletes={"E": [(1, 2)]})
        b = Delta(inserts={"E": [(1, 2)]}, deletes={"E": [(3, 1)]})
        combined = db.apply_delta(a.then(b), invalidate_plans=False)
        stepped = db.apply_delta(a, invalidate_plans=False).apply_delta(
            b, invalidate_plans=False
        )
        assert combined == stepped

    def test_inverse_roundtrip(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        delta = Delta(inserts={"E": [(2, 1)]}, deletes={"E": [(1, 2)]})
        back = db.apply_delta(delta, invalidate_plans=False).apply_delta(
            delta.inverse(), invalidate_plans=False
        )
        assert back == db

    def test_empty_and_len(self):
        assert Delta.empty().is_empty()
        assert len(Delta.insert("E", (1, 2), (2, 1))) == 2
        assert Delta(inserts={"E": []}).is_empty()


# ----------------------------------------------------------------------
# Database.apply_delta
# ----------------------------------------------------------------------


class TestApplyDelta:
    def test_updates_relations_and_universe(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        out = db.apply_delta(
            Delta(inserts={"E": [(2, 3)]}, deletes={"E": [(1, 2)]}),
            invalidate_plans=False,
        )
        assert out["E"].tuples == frozenset({(2, 3)})
        assert out.universe == frozenset({1, 2, 3})
        # deletions never shrink the universe
        out2 = out.apply_delta(Delta.delete("E", (2, 3)), invalidate_plans=False)
        assert out2.universe == frozenset({1, 2, 3})

    def test_noop_returns_self(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        assert db.apply_delta(Delta.insert("E", (1, 2)), invalidate_plans=False) is db

    def test_unknown_relation_raises(self):
        db = Database({1}, [Relation("E", 2, [])])
        with pytest.raises(KeyError):
            db.apply_delta(Delta.insert("R", (1,)), invalidate_plans=False)

    def test_arity_mismatch_raises(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
        with pytest.raises(ValueError):
            db.apply_delta(Delta.insert("E", (1, 2, 3)), invalidate_plans=False)
        # Deletes are validated too, even though a wrong-arity tuple could
        # never match anything — a typo'd delete should fail loudly, not
        # silently delete nothing.
        with pytest.raises(ValueError):
            db.apply_delta(Delta.delete("E", (1, 2, 3)), invalidate_plans=False)


# ----------------------------------------------------------------------
# View maintenance == recompute: directed cases
# ----------------------------------------------------------------------


def _reference(program, db, semantics):
    if semantics == "stratified":
        return stratified_semantics(program, db).idb
    return inflationary_semantics(program, db).idb


def _check_sequence(program, db, deltas, semantics):
    """Apply ``deltas`` through a view, asserting equality after each."""
    view = MaterializedView(program, db, semantics=semantics)
    for delta in deltas:
        before = view.result.idb
        changeset = view.apply(delta)
        assert view.result.idb == _reference(program, view.db, semantics)
        # The changeset is exactly the IDB diff plus the EDB echo.
        for pred, rel in view.result.idb.items():
            expected_ins = rel.tuples - before[pred].tuples
            expected_del = before[pred].tuples - rel.tuples
            assert changeset.inserted.get(pred, frozenset()) == expected_ins
            assert changeset.deleted.get(pred, frozenset()) == expected_del
    return view


class TestDirectedMaintenance:
    def test_tc_complement_insert_delete_cycle(self):
        db = graph_to_database(gg.path(6))
        _check_sequence(
            tc_complement_stratified(),
            db,
            [
                Delta.insert("E", (6, 1)),   # closes the cycle: TC goes full
                Delta.delete("E", (3, 4)),   # breaks it again
                Delta.delete("E", (1, 2)),
                Delta.insert("E", (1, 2)),
            ],
            "stratified",
        )

    def test_distance_program_mixed(self):
        db = graph_to_database(gg.path(7))
        _check_sequence(
            distance_program(),
            db,
            [
                Delta(inserts={"E": [(2, 5)]}, deletes={"E": [(4, 5)]}),
                Delta.delete("E", (2, 5)),
                Delta.insert("E", (7, 3)),
            ],
            "stratified",
        )

    def test_pi2_unsafe_negation(self):
        db = graph_to_database(gg.cycle(5))
        _check_sequence(
            pi2(),
            db,
            [Delta.delete("E", (5, 1)), Delta.insert("E", (3, 3))],
            "stratified",
        )

    def test_win_move_inflationary_fallback(self):
        db = graph_to_database(gg.path(5))
        view = _check_sequence(
            win_move_program(),
            db,
            [Delta.insert("E", (5, 1)), Delta.delete("E", (2, 3))],
            "inflationary",
        )
        assert view.recomputes == 2  # not semipositive: every delta recomputes

    def test_semipositive_inflationary_is_maintained(self):
        program = parse_program("T(X) :- E(Y, X), !E(X, Y).  T(X) :- E(X, Z), T(Z).")
        db = graph_to_database(gg.path(6))
        view = _check_sequence(
            program,
            db,
            [Delta.insert("E", (6, 2)), Delta.delete("E", (1, 2))],
            "inflationary",
        )
        assert view.recomputes == 0

    def test_universe_growth_falls_back(self):
        db = graph_to_database(gg.path(4))
        view = MaterializedView(tc_complement_stratified(), db)
        view.apply(Delta.insert("E", (4, 9)))  # 9 is a brand-new element
        assert 9 in view.db.universe
        assert view.recomputes == 1
        assert view.result.idb == _reference(
            tc_complement_stratified(), view.db, "stratified"
        )
        # Maintenance keeps working after the rebuild.
        view.apply(Delta.delete("E", (2, 3)))
        assert view.recomputes == 1
        assert view.result.idb == _reference(
            tc_complement_stratified(), view.db, "stratified"
        )

    def test_zero_ary_edb(self):
        program = parse_program(
            """
            T(X) :- E(X, Y), !B().
            S() :- E(X, X).
            """,
            carrier="T",
        )
        db = Database(
            {1, 2},
            [Relation("E", 2, [(1, 2)]), Relation("B", 0, [])],
        )
        _check_sequence(
            program,
            db,
            [
                Delta.insert("B", ()),
                Delta.insert("E", (2, 2)),
                Delta.delete("B", ()),
                Delta.delete("E", (2, 2)),
            ],
            "stratified",
        )

    def test_not_stratifiable_raises(self):
        db = graph_to_database(gg.path(3))
        with pytest.raises(NotStratifiableError):
            MaterializedView(win_move_program(), db, semantics="stratified")

    def test_rejects_idb_and_unknown_deltas(self):
        db = graph_to_database(gg.path(3))
        view = MaterializedView(tc_complement_stratified(), db)
        with pytest.raises(ValueError):
            view.apply(Delta.insert("TC", (1, 2)))
        with pytest.raises(KeyError):
            view.apply(Delta.insert("Nope", (1,)))

    def test_empty_delta_is_noop(self):
        db = graph_to_database(gg.path(3))
        view = MaterializedView(tc_complement_stratified(), db)
        result = view.result
        changeset = view.apply(Delta.empty())
        assert changeset.is_empty()
        assert view.result is result

    def test_changeset_format(self):
        changeset = ChangeSet(
            inserted={"T": {(1,)}}, deleted={"T": {(2,)}, "E": {(1, 2)}}
        )
        text = changeset.format()
        assert "T: +1 -1" in text
        assert "E: +0 -1" in text
        assert "  + 1" in text and "  - 1, 2" in text
        assert ChangeSet().format() == "(no change)"

    def test_changeset_hashes_by_content(self):
        a = ChangeSet(inserted={"T": {(1,), (2,)}}, deleted={"E": {(1, 2)}})
        b = ChangeSet(
            inserted={"T": {(2,), (1,)}}, deleted={"E": {(1, 2)}}
        )
        c = ChangeSet(inserted={"T": {(1,)}})
        assert a == b and hash(a) == hash(b)
        # Usable in sets/dicts: the server's recent-events window dedups
        # committed changesets by content.
        assert {a, b, c} == {a, c}
        assert hash(ChangeSet()) == hash(ChangeSet())


# ----------------------------------------------------------------------
# The Hypothesis property: random programs × random delta sequences
# ----------------------------------------------------------------------


def _property_body(program, db, deltas, semantics):
    if semantics == "stratified" and not is_stratifiable(program):
        return
    view = MaterializedView(program, db, semantics=semantics)
    for delta in deltas:
        view.apply(delta)
        assert view.result.idb == _reference(program, view.db, semantics)


class TestMaintenanceEqualsRecompute:
    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True, include_zeroary=True),
        dbd=databases_and_deltas(),
    )
    def test_stratified_mixed(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas, "stratified")

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True, include_zeroary=True),
        dbd=databases_and_deltas(insert_only=True),
    )
    def test_stratified_insert_only(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas, "stratified")

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True, include_zeroary=True),
        dbd=databases_and_deltas(delete_only=True),
    )
    def test_stratified_delete_only(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas, "stratified")

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=True, include_zeroary=True),
        dbd=databases_and_deltas(),
    )
    def test_inflationary_mixed(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas, "inflationary")

    @SLOW
    @given(
        program=random_programs(allow_idb_negation=False, include_zeroary=True),
        dbd=databases_and_deltas(),
    )
    def test_inflationary_semipositive_never_recomputes(self, program, dbd):
        db, deltas = dbd
        view = MaterializedView(program, db, semantics="inflationary")
        growth = False
        for delta in deltas:
            growth = growth or not (
                delta.normalize(view.db).values() <= view.db.universe
            )
            view.apply(delta)
            assert view.result.idb == _reference(program, view.db, "inflationary")
        if not growth:
            assert view.recomputes == 0
