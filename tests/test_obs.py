"""Tests for :mod:`repro.obs`: registry, recorder, tracer, exposition.

The contracts under test:

* the metrics registry is thread-safe (concurrent increments lose
  nothing) and histograms follow Prometheus ``le`` bucket semantics —
  an observation equal to a bound lands in that bound's bucket;
* the text exposition is parseable line-by-line, label values are
  escaped, and histogram ``_bucket`` series are cumulative with the
  ``+Inf`` bucket equal to ``_count``;
* the recorder facade is a true no-op while disabled — no allocation
  per call (regression-tested via ``sys.getallocatedblocks``) — and
  routes into the bound registry once enabled;
* span trees are well-formed (children nested inside parents, every
  non-root reachable, no orphans) and survive a Chrome trace-event
  JSON round-trip with structure and aggregates intact;
* ``aggregate`` attributes every traced second exactly once: the self
  time column sums to the summed root durations;
* the server's ``encode_stats`` codec renders arbitrary introspection
  payloads as ``json.dumps``-able values.
"""

from __future__ import annotations

import gc
import json
import sys
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    INSTRUMENTS,
    NULL_SPAN,
    RECORDER,
    TRACER,
    MetricsRegistry,
    Recorder,
    aggregate,
    disable_metrics,
    enable_metrics,
    export_chrome,
    import_chrome,
    span_total,
    walk,
)
from repro.server.protocol import encode_stats


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test leaves the process-wide facades disabled and drained."""
    yield
    disable_metrics()
    TRACER.stop()


# ----------------------------------------------------------------------
# Registry: counters, gauges, histograms
# ----------------------------------------------------------------------


def test_concurrent_increments_lose_nothing():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "concurrent counter")
    threads = [
        threading.Thread(
            target=lambda: [counter.inc() for _ in range(10_000)]
        )
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8 * 10_000


def test_histogram_bucket_edges_are_le():
    registry = MetricsRegistry()
    hist = registry.histogram("h", "edges", buckets=(1.0, 2.0, 5.0))
    for value in (1.0, 1.0001, 2.0, 5.0, 6.0):
        hist.observe(value)
    # Cumulative: le=1 holds {1.0}; le=2 adds {1.0001, 2.0}; le=5 adds
    # {5.0}; +Inf adds the overflowing {6.0}.
    assert hist.labels().bucket_counts() == [
        (1.0, 1),
        (2.0, 3),
        (5.0, 4),
        (float("inf"), 5),
    ]
    assert hist.labels().count == 5
    assert hist.labels().sum == pytest.approx(15.0001)


@given(
    values=st.lists(
        st.floats(
            min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        max_size=50,
    )
)
def test_histogram_invariants(values):
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(0.5, 10.0, 1000.0)).labels()
    for v in values:
        hist.observe(v)
    counts = hist.bucket_counts()
    # Cumulative counts never decrease; the +Inf bucket counts everything.
    assert all(a[1] <= b[1] for a, b in zip(counts, counts[1:]))
    assert counts[-1] == (float("inf"), len(values))
    assert hist.count == len(values)
    assert hist.sum == pytest.approx(sum(values), rel=1e-9, abs=1e-9)


def test_reregistration_conflicts_are_loud():
    registry = MetricsRegistry()
    registry.counter("x_total", labelnames=("view",))
    with pytest.raises(ValueError):
        registry.gauge("x_total")  # kind mismatch
    with pytest.raises(ValueError):
        registry.counter("x_total", labelnames=("shard",))  # label mismatch


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def test_exposition_lines_parse_and_labels_escape():
    registry = MetricsRegistry()
    registry.counter("r_total", "a counter", labelnames=("view",)).labels(
        'tc"quoted\\slash\nnewline'
    ).inc(3)
    registry.gauge("g", "a gauge").set(2.5)
    registry.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.exposition()
    assert text.endswith("\n")
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith("# HELP ") or line.startswith("# TYPE ")
            continue
        series, value = line.rsplit(" ", 1)
        float(value)  # every sample value is a number
        samples[series] = float(value)
    escaped = 'r_total{view="tc\\"quoted\\\\slash\\nnewline"}'
    assert samples[escaped] == 3
    assert samples["g"] == 2.5
    # Histogram: cumulative buckets, +Inf equals _count.
    assert samples['h_seconds_bucket{le="0.1"}'] == 1
    assert samples['h_seconds_bucket{le="1"}'] == 1
    assert samples['h_seconds_bucket{le="+Inf"}'] == samples["h_seconds_count"]
    assert samples["h_seconds_sum"] == pytest.approx(0.05)
    assert "# TYPE r_total counter" in text
    assert "# TYPE h_seconds histogram" in text


# ----------------------------------------------------------------------
# The recorder facade
# ----------------------------------------------------------------------


def test_disabled_recorder_allocates_nothing_per_call():
    recorder = Recorder()
    inc = recorder.inc
    inc("repro_engine_rounds_total")  # warm the call path
    gc.collect()
    before = sys.getallocatedblocks()
    for _ in range(10_000):
        inc("repro_engine_rounds_total")
    after = sys.getallocatedblocks()
    # The loop machinery accounts for a couple of blocks at most; a
    # per-call allocation would show up 10_000-fold.
    assert after - before < 50


def test_enabled_recorder_routes_into_the_bound_registry():
    scratch = MetricsRegistry()
    enable_metrics(scratch)
    try:
        RECORDER.inc("repro_engine_rounds_total", 2)
        RECORDER.observe("repro_view_apply_seconds", 0.01)
        assert scratch.counter("repro_engine_rounds_total").value == 2
        assert scratch.histogram("repro_view_apply_seconds").labels().count == 1
        with pytest.raises(KeyError):
            RECORDER.inc("not_in_the_catalog")
    finally:
        disable_metrics()
    # Disabled again: nothing flows, even for unknown names.
    RECORDER.inc("not_in_the_catalog")
    assert scratch.counter("repro_engine_rounds_total").value == 2


def test_instrument_catalog_is_well_formed():
    for name, (kind, help_text, buckets) in INSTRUMENTS.items():
        assert name.startswith("repro_")
        assert kind in ("counter", "gauge", "histogram")
        assert help_text
        assert (buckets is not None) == (kind == "histogram")


# ----------------------------------------------------------------------
# Tracing: well-formedness and the Chrome round-trip
# ----------------------------------------------------------------------


def _sample_forest():
    TRACER.start()
    with TRACER.span("outer", pred="TC") as outer:
        outer["rows_out"] = 7
        with TRACER.span("inner") as inner:
            inner["rows_out"] = 3
        TRACER.event("replan", pred="TC")
        with TRACER.span("inner"):
            pass
    with TRACER.span("second"):
        pass
    return TRACER.stop()


def test_trace_tree_is_well_formed():
    roots = _sample_forest()
    assert [r.name for r in roots] == ["outer", "second"]
    outer = roots[0]
    assert [c.name for c in outer.children] == ["inner", "replan", "inner"]
    spans = list(walk(roots))
    # Exactly the five spans built above, no orphans: every walked node
    # is either a root (parent None) or its parent's child.
    assert len(spans) == 5
    for node, parent in spans:
        if parent is None:
            assert node in roots
        else:
            assert node in parent.children
            assert parent.start <= node.start
            assert node.end <= parent.end
    assert TRACER.span("x") is NULL_SPAN  # stopped again -> null span
    assert not NULL_SPAN
    NULL_SPAN["swallowed"] = True  # attribute writes are no-ops


def test_chrome_round_trip_preserves_structure():
    roots = _sample_forest()
    text = export_chrome(roots)
    json.loads(text)  # valid JSON
    rebuilt = import_chrome(text)
    assert [r.name for r in rebuilt] == [r.name for r in roots]
    assert [c.name for c in rebuilt[0].children] == [
        c.name for c in roots[0].children
    ]
    # Aggregates survive the round-trip (durations up to µs rounding).
    before = {s.name: (s.count, s.rows) for s in aggregate(roots)}
    after = {s.name: (s.count, s.rows) for s in aggregate(rebuilt)}
    assert before == after
    assert span_total(rebuilt) == pytest.approx(span_total(roots), abs=1e-5)
    assert rebuilt[0].attrs["pred"] == "TC"


def test_aggregate_attributes_every_second_once():
    roots = _sample_forest()
    stats = aggregate(roots)
    assert sum(s.self_time for s in stats) == pytest.approx(
        span_total(roots), abs=1e-9
    )
    by_name = {s.name: s for s in stats}
    assert by_name["outer"].rows == 7
    assert by_name["inner"].count == 2
    assert by_name["replan"].count == 1


# ----------------------------------------------------------------------
# The stats-verb codec
# ----------------------------------------------------------------------


def test_encode_stats_is_json_safe():
    payload = {
        ("P", (0, 1)): {3, 1, 2},
        "nested": {"t": (1, "a"), "none": None, "flag": True},
        "obj": object(),
    }
    encoded = encode_stats(payload)
    json.dumps(encoded)  # must not raise
    assert encoded["nested"]["t"] == [1, "a"]
    assert encoded["('P', (0, 1))"] == [1, 2, 3]
    assert isinstance(encoded["obj"], str)
