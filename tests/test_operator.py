"""Tests for the consequence operator Theta (Section 2 semantics)."""

from hypothesis import given

from repro import Database, Relation, parse_program
from repro.core.operator import (
    as_interpretation,
    empty_idb,
    evaluate_rule,
    full_idb,
    idb_of,
    is_fixpoint,
    theta,
)
from repro.core.parser import parse_rule

from strategies import random_programs, small_databases


class TestEvaluateRule:
    def test_simple_join(self, path4_db):
        rule = parse_rule("T(X) :- E(X, Y), E(Y, Z).")
        out = evaluate_rule(rule, as_interpretation(parse_program("T(X) :- E(X, Y), E(Y, Z)."), path4_db))
        assert out == {(1,), (2,)}

    def test_repeated_variable_in_atom(self):
        db = Database({1, 2}, [Relation("E", 2, [(1, 1), (1, 2)])])
        rule = parse_rule("T(X) :- E(X, X).")
        assert evaluate_rule(rule, db) == {(1,)}

    def test_constant_in_body(self, path4_db):
        rule = parse_rule("T(X) :- E(1, X).")
        assert evaluate_rule(rule, path4_db) == {(2,)}

    def test_constant_in_head(self, path4_db):
        rule = parse_rule("T(9) :- E(1, 2).")
        # 9 is emitted even though it is not in the universe of E's tuples.
        assert evaluate_rule(rule, path4_db) == {(9,)}

    def test_unsafe_head_variable_ranges_over_universe(self, path4_db):
        rule = parse_rule("T(X) :- E(1, 2).")
        assert evaluate_rule(rule, path4_db) == {(1,), (2,), (3,), (4,)}

    def test_negation_as_filter(self, path4_db):
        rule = parse_rule("T(X) :- E(X, Y), !E(Y, X).")
        assert evaluate_rule(rule, path4_db) == {(1,), (2,), (3,)}

    def test_pure_negation_rule(self):
        db = Database({1, 2}, [Relation("V", 1, [(1,)])])
        rule = parse_rule("T(X) :- !V(X).")
        assert evaluate_rule(rule, db) == {(2,)}

    def test_inequality(self, path4_db):
        rule = parse_rule("T(X) :- E(X, Y), X != Y.")
        assert evaluate_rule(rule, path4_db) == {(1,), (2,), (3,)}

    def test_equality_binds_through_universe(self):
        db = Database({1, 2, 3}, [])
        rule = parse_rule("T(X) :- X = Y.")
        assert evaluate_rule(rule, db) == {(1,), (2,), (3,)}

    def test_empty_body_fact_schema(self):
        db = Database({1, 2}, [])
        rule = parse_rule("T(X, 1).")
        assert evaluate_rule(rule, db) == {(1, 1), (2, 1)}

    def test_missing_relation_treated_empty(self):
        db = Database({1}, [])
        assert evaluate_rule(parse_rule("T(X) :- Nope(X)."), db) == set()
        assert evaluate_rule(parse_rule("T(X) :- !Nope(X)."), db) == {(1,)}


class TestTheta:
    def test_replaces_rather_than_accumulates(self, pi1_program, path4_db):
        """Theta is the paper's non-cumulative operator."""
        full = full_idb(pi1_program, path4_db)
        out = theta(pi1_program, path4_db, full)
        # With T = A no rule body !T(y) can be satisfied.
        assert len(out["T"]) == 0

    def test_pi1_first_application(self, pi1_program, path4_db):
        out = theta(pi1_program, path4_db, empty_idb(pi1_program))
        assert set(out["T"].tuples) == {(2,), (3,), (4,)}

    def test_multi_idb(self, path4_db):
        p = parse_program(
            "A(X) :- E(X, Y). B(X) :- A(X), E(X, Y).", carrier="B"
        )
        out = theta(p, path4_db, {"A": Relation("A", 1, [(1,)]), "B": Relation("B", 1, [])})
        assert set(out["A"].tuples) == {(1,), (2,), (3,)}
        assert set(out["B"].tuples) == {(1,)}

    def test_is_fixpoint_examples(self, pi1_program, path4_db):
        assert is_fixpoint(pi1_program, path4_db, {"T": Relation("T", 1, [(2,), (4,)])})
        assert not is_fixpoint(pi1_program, path4_db, {"T": Relation("T", 1, [])})

    def test_idb_values_can_live_in_db(self, pi1_program, path4_db):
        loaded = path4_db.with_relation(Relation("T", 1, [(2,), (4,)]))
        assert is_fixpoint(pi1_program, loaded)


class TestInterpretationHelpers:
    def test_as_interpretation_defaults_empty(self, pi1_program, path4_db):
        interp = as_interpretation(pi1_program, path4_db)
        assert "T" in interp and len(interp["T"]) == 0

    def test_idb_of_roundtrip(self, pi1_program, path4_db):
        valuation = {"T": Relation("T", 1, [(2,)])}
        interp = as_interpretation(pi1_program, path4_db, valuation)
        assert idb_of(pi1_program, interp) == valuation

    def test_full_idb_sizes(self, pi1_program, path4_db):
        assert len(full_idb(pi1_program, path4_db)["T"]) == 4


@given(random_programs(), small_databases())
def test_theta_output_signature(program, db):
    """Theta always produces relations of the declared arities."""
    out = theta(program, db, empty_idb(program))
    for pred in program.idb_predicates:
        assert out[pred].arity == program.arity(pred)
        for t in out[pred]:
            assert all(v in db.universe for v in t)


@given(random_programs(allow_idb_negation=False), small_databases())
def test_theta_monotone_on_semipositive(program, db):
    """S <= S' implies Theta(S) <= Theta(S') when no IDB literal is negated."""
    from repro.core.fixpoint import idb_leq

    lo = empty_idb(program)
    mid = theta(program, db, lo)
    hi = theta(program, db, mid)
    # empty <= mid, so Theta(empty) <= Theta(mid), i.e. mid <= hi.
    assert idb_leq(mid, hi)
