"""Differential tests for the sharded parallel executor.

Every test here compares the parallel path against the sequential
engines on the same inputs — the sharded executor is *defined* by
"same answers, same changesets, same strata" — across shard counts,
semantics, and the maintenance/replay write paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_program
from repro.core.semantics.inflationary import inflationary_semantics
from repro.core.semantics.seminaive import seminaive_least_fixpoint
from repro.core.semantics.stratified import stratified_semantics
from repro.core.semantics.wellfounded import well_founded_semantics
from repro.db.database import Database
from repro.db.relation import Relation
from repro.materialize.delta import Delta
from repro.materialize.view import MaterializedView
from repro.parallel import build_shard_plan, fork_available
from repro.parallel import ship

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

WIN = parse_program("WIN(X) :- MOVE(X,Y), !WIN(Y).")
TC = parse_program("T(X,Y) :- E(X,Y).\nT(X,Z) :- E(X,Y), T(Y,Z).")
STRAT_NEG = parse_program(
    "R(X,Y) :- E(X,Y).\nR(X,Z) :- E(X,Y), R(Y,Z).\nNR(X,Y) :- !R(X,Y)."
)

NSHARDS = [1, 2, 4]


def _db(rel: str, edges, universe) -> Database:
    return Database(frozenset(universe), [Relation(rel, 2, set(edges))])


def _assert_idb_equal(seq, par, context=""):
    for pred in seq.idb:
        assert par.idb[pred].tuples == seq.idb[pred].tuples, (context, pred)


# ----------------------------------------------------------------------
# Engines: fixed cases across all shard counts
# ----------------------------------------------------------------------


class TestEngineDifferential:
    @pytest.mark.parametrize("nshards", NSHARDS)
    def test_wellfounded_partitions_match(self, nshards):
        # path: alternating won/lost (all atoms decided); cycle: all undefined
        for edges, universe in [
            ([(i, i + 1) for i in range(9)], range(10)),
            ([(i, (i + 1) % 5) for i in range(5)], range(5)),
        ]:
            db = _db("MOVE", edges, universe)
            seq = well_founded_semantics(WIN, db)
            par = well_founded_semantics(WIN, db, parallel=nshards)
            assert par.true == seq.true
            assert par.undefined == seq.undefined

    @pytest.mark.parametrize("nshards", NSHARDS)
    @pytest.mark.parametrize(
        "engine",
        [seminaive_least_fixpoint, inflationary_semantics, stratified_semantics],
    )
    def test_positive_engines_match(self, engine, nshards):
        db = _db("E", [(i, i + 1) for i in range(12)], range(13))
        seq = engine(TC, db)
        par = engine(TC, db, parallel=nshards)
        _assert_idb_equal(seq, par, engine.__name__)

    @pytest.mark.parametrize("nshards", NSHARDS)
    def test_stratified_negation_and_strata_match(self, nshards):
        db = _db("E", [(i, i + 1) for i in range(6)], range(7))
        seq = stratified_semantics(STRAT_NEG, db)
        par = stratified_semantics(STRAT_NEG, db, parallel=nshards)
        _assert_idb_equal(seq, par)
        assert par.strata == seq.strata


# ----------------------------------------------------------------------
# Engines: random graphs (property-based)
# ----------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=14
)


class TestEngineProperties:
    @settings(max_examples=8, deadline=None)
    @given(edges=edge_lists)
    def test_wellfounded_matches_on_random_move_graphs(self, edges):
        db = _db("MOVE", edges, range(6))
        seq = well_founded_semantics(WIN, db)
        par = well_founded_semantics(WIN, db, parallel=2)
        assert par.true == seq.true
        assert par.undefined == seq.undefined

    @settings(max_examples=8, deadline=None)
    @given(edges=edge_lists)
    def test_stratified_matches_on_random_graphs(self, edges):
        db = _db("E", edges, range(6))
        seq = stratified_semantics(STRAT_NEG, db)
        par = stratified_semantics(STRAT_NEG, db, parallel=2)
        _assert_idb_equal(seq, par)


# ----------------------------------------------------------------------
# Maintenance: delta streams through sharded views
# ----------------------------------------------------------------------


def _same_result(a, b, semantics):
    if semantics == "wellfounded":
        assert a.true == b.true
        assert a.undefined == b.undefined
    else:
        for pred in a.idb:
            assert a.idb[pred].tuples == b.idb[pred].tuples, pred


def _run_stream(semantics, program, rel, edges, universe, deltas):
    db = _db(rel, edges, universe)
    seq = MaterializedView(program, db, semantics=semantics)
    par = MaterializedView(program, db, semantics=semantics, parallel=2)
    assert par._par is not None, "parallel view fell back to sequential"
    _same_result(seq.result, par.result, semantics)
    for i, delta in enumerate(deltas):
        cs_seq = seq.apply(delta)
        cs_par = par.apply(delta)
        assert cs_par.inserted == cs_seq.inserted, (semantics, i)
        assert cs_par.deleted == cs_seq.deleted, (semantics, i)
        _same_result(seq.result, par.result, semantics)
    return seq, par


class TestShardedViews:
    DELTAS = [
        Delta.insert("E", (8, 9)),
        Delta.delete("E", (3, 4)),
        Delta(inserts={"E": [(3, 4), (2, 7)]}, deletes={"E": [(0, 1)]}),
    ]

    @pytest.mark.parametrize("semantics", ["stratified", "inflationary"])
    def test_two_valued_stream_matches(self, semantics):
        program = STRAT_NEG if semantics == "stratified" else TC
        _run_stream(
            semantics, program, "E", [(i, i + 1) for i in range(8)],
            range(10), self.DELTAS,
        )

    def test_wellfounded_stream_matches(self):
        deltas = [
            Delta.insert("MOVE", (6, 7)),
            Delta.delete("MOVE", (2, 3)),
            Delta.insert("MOVE", (7, 0)),
        ]
        _run_stream(
            "wellfounded", WIN, "MOVE", [(i, i + 1) for i in range(6)],
            range(8), deltas,
        )

    def test_rollback_matches(self):
        seq, par = _run_stream(
            "stratified", TC, "E", [(i, i + 1) for i in range(8)],
            range(10), self.DELTAS,
        )
        assert seq.undo_depth == par.undo_depth == len(self.DELTAS)
        cs_seq = seq.rollback(len(self.DELTAS))
        cs_par = par.rollback(len(self.DELTAS))
        assert cs_par.inserted == cs_seq.inserted
        assert cs_par.deleted == cs_seq.deleted
        _same_result(seq.result, par.result, "stratified")

    def test_universe_growth_recomputes_identically(self):
        db = _db("E", [(i, i + 1) for i in range(5)], range(6))
        seq = MaterializedView(TC, db, semantics="stratified")
        par = MaterializedView(TC, db, semantics="stratified", parallel=2)
        delta = Delta.insert("E", (5, 99))  # 99 grows the universe
        cs_seq, cs_par = seq.apply(delta), par.apply(delta)
        assert cs_par.inserted == cs_seq.inserted
        assert cs_par.deleted == cs_seq.deleted
        assert seq.recomputes == par.recomputes == 1
        # maintenance still exact after the in-pool recompute rebuilt state
        delta2 = Delta.delete("E", (1, 2))
        cs_seq, cs_par = seq.apply(delta2), par.apply(delta2)
        assert cs_par.inserted == cs_seq.inserted
        assert cs_par.deleted == cs_seq.deleted
        _same_result(seq.result, par.result, "stratified")

    @settings(max_examples=6, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10
        ),
        flips=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_random_delta_streams_match(self, edges, flips):
        db = _db("E", edges, range(5))
        seq = MaterializedView(TC, db, semantics="stratified")
        par = MaterializedView(TC, db, semantics="stratified", parallel=2)
        for pair in flips:
            present = pair in seq.db["E"].tuples
            delta = (
                Delta.delete("E", pair) if present else Delta.insert("E", pair)
            )
            cs_seq = seq.apply(delta)
            cs_par = par.apply(delta)
            assert cs_par.inserted == cs_seq.inserted
            assert cs_par.deleted == cs_seq.deleted
        _same_result(seq.result, par.result, "stratified")


# ----------------------------------------------------------------------
# Durability: WAL replay of a sharded view
# ----------------------------------------------------------------------


class TestShardedViewReplay:
    def test_wal_replay_recovers_sharded_view(self, tmp_path):
        import asyncio

        from repro.server.service import ViewServer

        program_text = "T(X,Y) :- E(X,Y).\nT(X,Z) :- E(X,Y), T(Y,Z)."
        db = _db("E", [(i, i + 1) for i in range(5)], range(7))

        async def write_phase():
            service = ViewServer(state_dir=tmp_path, parallel=2)
            await service.start()
            service.register("tc", program_text, db)
            await service.submit("tc", Delta.insert("E", (5, 6)))
            await service.submit("tc", Delta.delete("E", (2, 3)))
            _, answer = service.query("tc", "T")
            await service.close()
            return answer.tuples

        async def recover_phase(parallel):
            service = ViewServer(state_dir=tmp_path, parallel=parallel)
            await service.start()
            _, answer = service.query("tc", "T")
            await service.close()
            return answer.tuples

        before = asyncio.run(write_phase())
        # the same durable state recovers identically with and without a pool
        assert asyncio.run(recover_phase(2)) == before
        assert asyncio.run(recover_phase(0)) == before


# ----------------------------------------------------------------------
# Shard planner and symbol-table discipline
# ----------------------------------------------------------------------


class TestShardPlanner:
    def test_win_move_partitions_on_the_game_position(self):
        plan = build_shard_plan(WIN)
        assert plan.columns.get("WIN") == (0,)

    def test_transitive_closure_has_no_shared_key(self):
        # T occurs as T(Y,Z) in the body and T(X,Z)/T(X,Y) in heads:
        # only the last column is shared by every occurrence.
        plan = build_shard_plan(TC)
        assert "T" in plan.columns

    def test_nonrecursive_predicates_get_no_key(self):
        program = parse_program("Q(X,Y) :- E(X,Y).")
        assert build_shard_plan(program).columns == {}


class TestSymbolTableShipping:
    def test_canonical_table_is_reproducible(self):
        universe = frozenset([3, 1, "a", 2, "b"])
        t1 = ship.build_table(universe, TC)
        t2 = ship.build_table(universe, TC)
        assert ship.table_fingerprint(t1) == ship.table_fingerprint(t2)

    def test_encode_decode_round_trip(self):
        table = ship.build_table(frozenset(range(6)), TC)
        tuples = {(0, 1), (4, 5), (2, 2)}
        enc = ship.encode_tuples(table, 2, tuples)
        assert enc[0] == ship.CODES
        assert ship.decode_tuples(table, 2, enc) == tuples

    def test_uninterned_values_fall_back_to_plain(self):
        table = ship.build_table(frozenset(range(4)), TC)
        tuples = {(0, "never-interned")}
        enc = ship.encode_tuples(table, 2, tuples)
        assert enc[0] == ship.PLAIN
        assert ship.decode_tuples(table, 2, enc) == tuples

    def test_delta_interning_keeps_fingerprints_aligned(self):
        universe = frozenset(range(4))
        t1 = ship.build_table(universe, TC)
        t2 = ship.build_table(universe, TC)
        delta = Delta.insert("E", (90, 91), (92, 93))
        ship.intern_delta_values(t1, delta)
        ship.intern_delta_values(t2, delta)
        assert ship.table_fingerprint(t1) == ship.table_fingerprint(t2)
        enc = ship.encode_tuples(t1, 2, {(90, 91)})
        assert enc[0] == ship.CODES
        assert ship.decode_tuples(t2, 2, enc) == {(90, 91)}
