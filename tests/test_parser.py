"""Parser tests, including error reporting and the pretty round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.core.literals import Atom, Eq, Negation, Neq
from repro.core.parser import ParseError, parse_atom, parse_program, parse_rule
from repro.core.pretty import format_program, format_rule
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Constant, Variable


def test_parse_pi1():
    p = parse_program("T(X) :- E(Y, X), !T(Y).")
    assert p.idb_predicates == {"T"}
    assert p.edb_predicates == {"E"}
    r = p.rules[0]
    assert isinstance(r.body[1], Negation)


def test_not_keyword():
    r = parse_rule("T(X) :- not T(Y).")
    assert isinstance(r.body[0], Negation)


def test_comparisons():
    r = parse_rule("T(X) :- X != Y, X = Z.")
    assert isinstance(r.body[0], Neq)
    assert isinstance(r.body[1], Eq)


def test_constants_and_variables():
    a = parse_atom("E(X, a, 3, 'Quoted One', _u)")
    assert a.args == (
        Variable("X"),
        Constant("a"),
        Constant(3),
        Constant("Quoted One"),
        Variable("_u"),
    )


def test_negative_integer_constant():
    a = parse_atom("E(-3)")
    assert a.args == (Constant(-3),)


def test_escaped_quote():
    a = parse_atom(r"E('it\'s')")
    assert a.args == (Constant("it's"),)


def test_fact_and_empty_body_forms():
    assert parse_rule("F(1, 2).").body == ()
    assert parse_rule("F(1, 2) :- .").body == ()


def test_zero_arity_atom():
    a = parse_atom("Flag()")
    assert a.arity == 0


def test_comments_both_styles():
    p = parse_program(
        """
        % percent comment
        # hash comment
        T(X) :- E(X, X).
        """
    )
    assert len(p.rules) == 1


def test_missing_dot_is_error():
    with pytest.raises(ParseError):
        parse_program("T(X) :- E(X, X)")


def test_unexpected_character_reports_position():
    with pytest.raises(ParseError) as info:
        parse_program("T(X) :- E(X @ X).")
    assert "line 1" in str(info.value)


def test_trailing_input_rejected_for_single_rule():
    with pytest.raises(ParseError):
        parse_rule("T(X) :- E(X, X). T(Y).")


def test_carrier_passthrough():
    p = parse_program("A(X) :- E(X, X). B(X) :- A(X).", carrier="B")
    assert p.carrier == "B"


def test_multiline_program():
    text = """
    S(X, Y) :- E(X, Y).
    S(X, Y) :- E(X, Z),
               S(Z, Y).
    """
    assert len(parse_program(text).rules) == 2


# ----------------------------------------------------------------------
# Pretty-printer round trip
# ----------------------------------------------------------------------

_terms = st.one_of(
    st.integers(-20, 20),
    st.sampled_from(["a", "b", "node1", "it's", "Mixed Case", "not"]),
    st.sampled_from([Variable("X"), Variable("Y"), Variable("_z")]),
)
_atoms = st.builds(
    lambda pred, args: Atom(pred, args),
    st.sampled_from(["E", "T", "Edge"]),
    st.lists(_terms, min_size=0, max_size=3),
)


def _consistent_arities(rules):
    seen = {}
    for r in rules:
        atoms = [r.head] + [
            t.atom if isinstance(t, Negation) else t
            for t in r.body
            if isinstance(t, (Atom, Negation))
        ]
        for a in atoms:
            if seen.setdefault(a.pred, a.arity) != a.arity:
                return False
    return True


_literals = st.one_of(
    _atoms,
    st.builds(Negation, _atoms),
    st.builds(Eq, _terms, _terms),
    st.builds(Neq, _terms, _terms),
)
_rules = st.builds(
    Rule, st.builds(lambda: Atom("H", [Variable("X")])), st.lists(_literals, max_size=4)
)


@given(st.lists(_rules, min_size=1, max_size=5).filter(_consistent_arities))
def test_pretty_roundtrip(rules):
    program = Program(rules)
    reparsed = parse_program(format_program(program))
    assert reparsed == program


def test_roundtrip_specific_awkward_constants():
    r = Rule(
        Atom("H", [Variable("X")]),
        (Atom("E", ["Mixed Case", "not", -5]), Neq(Variable("X"), Constant("a b"))),
    )
    assert parse_rule(format_rule(r)) == r


# ----------------------------------------------------------------------
# Source spans (provenance for the static analyzer)
# ----------------------------------------------------------------------


def test_spans_on_single_line_rule():
    r = parse_rule("T(X) :- E(Y, X), !T(Y).")
    assert (r.span.line, r.span.column) == (1, 1)
    assert (r.head.span.line, r.head.span.column) == (1, 1)
    assert (r.body[0].span.line, r.body[0].span.column) == (1, 9)
    assert (r.body[1].atom.span.line, r.body[1].atom.span.column) == (1, 19)


def test_spans_survive_comments_and_multiline_rules():
    text = (
        "% leading comment\n"
        "T(X) :-\n"
        "    E(Y, X),\n"
        "    !T(Y).\n"
        "S(X) :- T(X).  % trailing comment\n"
    )
    p = parse_program(text)
    first, second = p.rules
    assert (first.span.line, first.span.column) == (2, 1)
    assert (first.body[0].span.line, first.body[0].span.column) == (3, 5)
    assert (first.body[1].atom.span.line, first.body[1].atom.span.column) == (4, 6)
    assert (second.span.line, second.span.column) == (5, 1)
    assert (second.body[0].span.line, second.body[0].span.column) == (5, 9)


def test_spans_are_provenance_only():
    """Parsed and code-built syntax are one value: spans never affect
    equality, hashing, or repr."""
    parsed = parse_rule("T(X) :- E(Y, X), !T(Y).")
    built = Rule(
        Atom("T", [Variable("X")]),
        (
            Atom("E", [Variable("Y"), Variable("X")]),
            Negation(Atom("T", [Variable("Y")])),
        ),
    )
    assert built.span is None and parsed.span is not None
    assert parsed == built
    assert hash(parsed) == hash(built)
    assert repr(parsed) == repr(built)


def test_parse_error_position_is_exact():
    with pytest.raises(ParseError) as err:
        parse_program("T(X) :- E(X, Y).\nT(X :- E(X, Y).\n")
    assert err.value.line == 2
    assert err.value.column == 5
