"""Unit tests for the (program, db)-keyed plan store.

The store is what lets every engine — and the grounder behind the
well-founded/SAT pipelines — share one compilation per input.  These
tests pin down the cache contract: exact value-keyed hits, separate
entries per compilation context (database statistics, small-predicate
hints), LRU bounding, and targeted invalidation.
"""

from __future__ import annotations

from repro import Database, Relation, parse_program
from repro.core.planning import PLAN_STORE, PlanStore
from repro.core.semantics import naive_least_fixpoint, stratified_semantics
from repro.graphs import generators as gg
from repro.graphs.encode import graph_to_database


def _db(edges=((1, 2), (2, 3))):
    return Database({1, 2, 3}, [Relation("E", 2, edges)])


def _tc():
    return parse_program("S(X, Y) :- E(X, Y). S(X, Y) :- E(X, Z), S(Z, Y).")


def test_program_plan_hits_on_equal_program_and_db():
    store = PlanStore()
    first = store.program_plan(_tc(), _db())
    second = store.program_plan(_tc(), _db())  # equal values, fresh objects
    assert first is second
    assert store.hits == 1 and store.misses == 1


def test_rule_plan_hits_and_counts():
    store = PlanStore()
    rule = _tc().rules[0]
    a = store.rule_plan(rule)
    b = store.rule_plan(rule)
    assert a is b
    assert store.stats() == (1, 1, 1)


def test_distinct_databases_get_distinct_entries():
    store = PlanStore()
    store.program_plan(_tc(), _db())
    store.program_plan(_tc(), _db(edges=((1, 2),)))
    store.program_plan(_tc())  # no statistics at all
    assert store.misses == 3 and store.hits == 0 and len(store) == 3


def test_small_preds_hint_is_part_of_the_key():
    store = PlanStore()
    rule = parse_program("S(X, Y) :- E(X, Z), S(Z, Y).").rules[0]
    plain = store.rule_plan(rule, _db())
    hinted = store.rule_plan(rule, _db(), small_preds=frozenset({"S"}))
    assert plain is not hinted
    assert store.misses == 2


def test_lru_eviction_respects_maxsize():
    store = PlanStore(maxsize=2)
    rules = parse_program(
        "T(X) :- E(X, Y). S(X, Y) :- E(X, Y). R(X) :- E(X, X)."
    ).rules
    for r in rules:
        store.rule_plan(r)
    assert len(store) == 2  # the first entry was evicted
    store.rule_plan(rules[0])  # gone, so a recompile
    assert store.misses == 4 and store.hits == 0


def test_invalidate_by_database():
    store = PlanStore()
    db_a, db_b = _db(), _db(edges=((3, 1),))
    store.program_plan(_tc(), db_a)
    store.program_plan(_tc(), db_b)
    dropped = store.invalidate(db=db_a)
    assert dropped == 1 and len(store) == 1
    store.program_plan(_tc(), db_b)
    assert store.hits == 1  # the other database's entry survived


def test_invalidate_by_program_drops_its_rules_too():
    store = PlanStore()
    program, other = _tc(), parse_program("T(X) :- E(X, X).")
    store.program_plan(program, _db())
    store.rule_plans(program.rules, _db())
    store.rule_plan(other.rules[0], _db())
    dropped = store.invalidate(program=program)
    assert dropped == 3  # the program entry plus its two rule entries
    assert len(store) == 1  # the unrelated rule stays


def test_invalidate_everything_and_clear():
    store = PlanStore()
    store.program_plan(_tc(), _db())
    assert store.invalidate() == 1 and len(store) == 0
    store.program_plan(_tc(), _db())
    store.clear()
    assert store.stats() == (0, 0, 0)


def test_engines_share_the_global_store():
    # Two runs of the same engine on the same input: the second compiles
    # nothing.  Stratified evaluation funnels through the same store, so
    # its strata reuse whatever equal (rules, db) entries exist.
    program, db = _tc(), graph_to_database(gg.path(5))
    naive_least_fixpoint(program, db)
    hits_before = PLAN_STORE.hits
    naive_least_fixpoint(program, db)
    assert PLAN_STORE.hits > hits_before

    hits_before = PLAN_STORE.hits
    stratified_semantics(program, db)
    stratified_semantics(program, db)
    assert PLAN_STORE.hits > hits_before


# ----------------------------------------------------------------------
# Invalidation wiring: Database.apply_delta drops superseded plans
# ----------------------------------------------------------------------


def test_apply_delta_invalidates_plans_for_the_old_database():
    from repro.materialize import Delta

    db = _db()
    program = _tc()
    PLAN_STORE.program_plan(program, db)
    PLAN_STORE.rule_plans(program.rules, db)
    new_db = db.apply_delta(Delta.insert("E", (3, 1)))
    # Every entry compiled against the superseded database value is gone:
    # a second targeted invalidation finds nothing left to drop.
    assert PLAN_STORE.invalidate(db=db) == 0
    # Plans for the new database are fresh compiles, never the stale
    # objects (whose hoisted statistics/domain described the old value).
    plan = PLAN_STORE.program_plan(program, new_db)
    assert plan.plans[0].domain_universe == new_db.universe


def test_apply_delta_can_skip_invalidation():
    from repro.materialize import Delta

    # A database value no other test compiles against: the assertion
    # counts entries in the process-wide store, so a shared value would
    # make the count order-dependent.
    db = Database(
        {"ps-a", "ps-b", "ps-c"}, [Relation("E", 2, [("ps-a", "ps-b")])]
    )
    PLAN_STORE.invalidate(db=db)  # drop leftovers from earlier runs
    PLAN_STORE.program_plan(_tc(), db)
    db.apply_delta(Delta.insert("E", ("ps-b", "ps-c")), invalidate_plans=False)
    assert PLAN_STORE.invalidate(db=db) == 1  # the entry survived


def test_update_stream_keeps_plan_store_bounded():
    # Regression: every apply_delta supersedes a db value, and engines
    # also compile against *derived* databases (per-stratum working dbs,
    # grounding interpretations).  Before the eager lineage eviction, a
    # long update stream filled the LRU with plans no lookup could ever
    # hit again; now each update evicts the superseded value's whole
    # derived family, so the stream leaves only the newest generation.
    from repro.materialize import Delta

    program = _tc()
    db = Database({0, 1}, [Relation("E", 2, [(0, 1)])])
    before = len(PLAN_STORE)
    for i in range(1000):
        # Compile against the current value AND a database derived from
        # it (what the stratified engine's working databases look like).
        PLAN_STORE.program_plan(program, db)
        derived = db.with_relation(Relation("S", 2, [(0, 1)]))
        PLAN_STORE.rule_plan(program.rules[0], db=derived)
        # Fresh values each step: the universe grows, so no db value in
        # the stream ever repeats (the worst case for the old LRU).
        db = db.apply_delta(Delta.insert("E", (i + 1, i + 2)))
    assert len(PLAN_STORE) <= before + 8
    assert len(PLAN_STORE) < PLAN_STORE.maxsize


def test_apply_delta_evicts_plans_of_derived_databases():
    from repro.materialize import Delta

    db = Database({"ln-a", "ln-b"}, [Relation("E", 2, [("ln-a", "ln-b")])])
    working = db.with_relation(Relation("S", 2, [("ln-a", "ln-b")]))
    PLAN_STORE.rule_plan(_tc().rules[0], db=working)
    db.apply_delta(Delta.insert("E", ("ln-b", "ln-a")))
    # The derived working database's entry is gone too, not just the
    # base value's: a second scan finds nothing left to drop.
    assert PLAN_STORE.invalidate(db=working) == 0


def test_materialized_view_survives_store_invalidation():
    # The view's maintenance plans are compiled db-free and referenced
    # view-locally, so the invalidation its own deltas trigger (and even
    # a full store clear) cannot stale or lose them.
    from repro.graphs import generators as gg
    from repro.materialize import Delta, MaterializedView

    program = parse_program(
        "TC(X, Y) :- E(X, Y). TC(X, Y) :- E(X, Z), TC(Z, Y). N(X, Y) :- !TC(X, Y)."
    )
    view = MaterializedView(program, graph_to_database(gg.path(4)), "stratified")
    view.apply(Delta.insert("E", (4, 1)))
    PLAN_STORE.invalidate()
    view.apply(Delta.delete("E", (4, 1)))
    from repro.core.semantics import stratified_semantics as _strat

    assert view.result.idb == _strat(program, view.db).idb
