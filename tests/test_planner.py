"""Tests for the rule-compilation subsystem (:mod:`repro.core.planning`).

The load-bearing guarantees:

* compiled rule execution is *extensionally identical* to the legacy
  per-round evaluator on arbitrary rules, including repeated variables,
  constants, and unsafe active-domain completion;
* every engine that now evaluates through plans (naive, semi-naive,
  inflationary, incremental, stratified) computes the same valuations as
  the legacy uncompiled Theta iteration.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from strategies import positive_programs, random_programs, small_databases

from repro import Database, Relation, parse_program
from repro.core.fixpoint import idb_equal, idb_union
from repro.core.operator import (
    as_interpretation,
    empty_idb,
    evaluate_rule,
    evaluate_rule_legacy,
    theta,
    theta_legacy,
)
from repro.core.planning import compile_program, compile_rule, execute_plan
from repro.core.semantics import (
    incremental_inflationary_semantics,
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    stratified_semantics,
)


# ----------------------------------------------------------------------
# Legacy reference iterations (no planner anywhere on the path)
# ----------------------------------------------------------------------


def legacy_least_fixpoint(program, db):
    """Naive least-fixpoint iteration via the pre-planner evaluator."""
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def legacy_inflationary(program, db):
    """Inflationary iteration via the pre-planner evaluator."""
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


# ----------------------------------------------------------------------
# Single-rule equivalence: compiled == legacy
# ----------------------------------------------------------------------


@given(random_programs(), small_databases())
def test_evaluate_rule_matches_legacy_on_random_rules(program, db):
    interp = as_interpretation(program, db, theta_legacy(program, db))
    arities = program.arities
    for rule in program.rules:
        assert evaluate_rule(rule, interp, arities) == evaluate_rule_legacy(
            rule, interp, arities
        )


@given(random_programs(), small_databases())
def test_theta_matches_legacy_theta(program, db):
    # Compare along a whole non-cumulative iteration, not just round 1.
    current = empty_idb(program)
    for _ in range(4):
        compiled = theta(program, db, current)
        legacy = theta_legacy(program, db, current)
        assert idb_equal(compiled, legacy)
        current = compiled


@pytest.mark.parametrize(
    "source",
    [
        # Repeated variables in body atoms and head.
        "T(X) :- E(X, X). S(X, X) :- E(X, Y), E(Y, X).",
        # Constants in body and head argument positions.
        "T(X) :- E(1, X). S(2, Y) :- E(Y, 2), !T(2).",
        # Unsafe rules: completion over the whole universe.
        "T(Z) :- !S(U, U), !T(W). S(X, Y) :- E(X, Y).",
        # Pure cross product plus interleaved comparisons.
        "S(X, Y) :- T(X), T(Y), X != Y. T(X) :- E(X, Y), X = Y.",
        # Filters only ready during completion.
        "T(X) :- !E(X, X). S(X, Y) :- !E(X, Y), X != Y.",
    ],
)
def test_compiled_rules_handle_hard_shapes(source):
    program = parse_program(source)
    db = Database(
        {1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 2), (2, 3), (3, 1)])]
    )
    current = empty_idb(program)
    for _ in range(4):
        interp = as_interpretation(program, db, current)
        for rule in program.rules:
            plan = compile_rule(rule, db=db)
            assert execute_plan(plan, interp) == evaluate_rule_legacy(
                rule, interp, program.arities
            )
        current = theta(program, db, current)


def test_plan_shape_for_transitive_closure():
    program = parse_program("S(X, Y) :- E(X, Z), S(Z, Y).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    plan = compile_rule(program.rules[0], db=db)
    # Two join steps, no completion, and the second step keyed on the
    # variable bound by the first.
    assert len(plan.steps) == 2
    assert not plan.completions
    first, second = plan.steps
    assert first.key_columns == ()  # nothing bound yet
    assert len(second.key_columns) == 1
    assert "join" in plan.describe()


def test_program_plan_consequences_groups_by_head():
    program = parse_program("T(X) :- E(X, Y). S(X, Y) :- E(X, Y).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    plan = compile_program(program, db)
    derived = plan.consequences(as_interpretation(program, db))
    assert derived == {"T": {(1,)}, "S": {(1, 2)}}


# ----------------------------------------------------------------------
# Cross-engine equivalence against the legacy uncompiled path
# ----------------------------------------------------------------------


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_naive_equals_legacy_iteration(program, db):
    assert idb_equal(
        naive_least_fixpoint(program, db).idb, legacy_least_fixpoint(program, db)
    )


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_seminaive_equals_legacy_iteration(program, db):
    assert idb_equal(
        seminaive_least_fixpoint(program, db).idb,
        legacy_least_fixpoint(program, db),
    )


@settings(max_examples=25)
@given(random_programs(), small_databases())
def test_compiled_inflationary_equals_legacy_iteration(program, db):
    assert idb_equal(
        inflationary_semantics(program, db).idb, legacy_inflationary(program, db)
    )


@settings(max_examples=25)
@given(random_programs(), small_databases())
def test_compiled_incremental_equals_legacy_iteration(program, db):
    assert idb_equal(
        incremental_inflationary_semantics(program, db).idb,
        legacy_inflationary(program, db),
    )


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_stratified_equals_legacy_iteration(program, db):
    # Positive programs are trivially stratifiable (one stratum) and their
    # stratified semantics is the least fixpoint.
    assert idb_equal(
        stratified_semantics(program, db).idb, legacy_least_fixpoint(program, db)
    )
