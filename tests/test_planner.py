"""Tests for the rule-compilation subsystem (:mod:`repro.core.planning`).

The load-bearing guarantees:

* **three-way equivalence**: on arbitrary rules — including repeated
  variables, constants, zero-ary relations, and unsafe active-domain
  completion — the legacy per-round evaluator, the PR-1 tuple-at-a-time
  dict executor, and the set-at-a-time batch executor (anti-join
  negation, complement-based completion) all derive the same tuples;
* every engine that now evaluates through plans (naive, semi-naive,
  inflationary, incremental, stratified) computes the same valuations as
  the legacy uncompiled Theta iteration;
* the batch compiler actually schedules negations as anti-joins and
  complement joins (plan-shape tests), so the fast paths cannot silently
  regress to enumerate-then-filter.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from strategies import (
    disconnected_programs,
    positive_programs,
    random_programs,
    small_databases,
)

from repro import Database, Relation, parse_program
from repro.core.fixpoint import idb_equal, idb_union
from repro.core.operator import (
    as_interpretation,
    empty_idb,
    evaluate_rule,
    evaluate_rule_legacy,
    theta,
    theta_legacy,
)
from repro.core.planning import (
    AntiJoin,
    ComplementJoin,
    ExtendDomain,
    compile_program,
    compile_rule,
    execute_plan,
    execute_plan_rows_legacy,
    solve_plan,
    solve_plan_rows_legacy,
)
from repro.core.semantics import (
    incremental_inflationary_semantics,
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
    stratified_semantics,
)


# ----------------------------------------------------------------------
# Legacy reference iterations (no planner anywhere on the path)
# ----------------------------------------------------------------------


def legacy_least_fixpoint(program, db):
    """Naive least-fixpoint iteration via the pre-planner evaluator."""
    current = empty_idb(program)
    while True:
        nxt = theta_legacy(program, db, current)
        if idb_equal(nxt, current):
            return current
        current = nxt


def legacy_inflationary(program, db):
    """Inflationary iteration via the pre-planner evaluator."""
    current = empty_idb(program)
    while True:
        nxt = idb_union([current, theta_legacy(program, db, current)])
        if idb_equal(nxt, current):
            return current
        current = nxt


# ----------------------------------------------------------------------
# Single-rule equivalence: batch == dict executor == legacy (three-way)
# ----------------------------------------------------------------------


def assert_three_way(rule, interp, arities):
    """Legacy evaluator, dict executor, and batch executor must agree —
    the batch executor with the semi-join reduction pass both on and off."""
    plan = compile_rule(rule)
    legacy = evaluate_rule_legacy(rule, interp, arities)
    dict_rows = execute_plan_rows_legacy(plan, interp)
    batch = execute_plan(plan, interp, semijoin=True)
    batch_unreduced = execute_plan(plan, interp, semijoin=False)
    assert batch == batch_unreduced == dict_rows == legacy


@given(random_programs(), small_databases())
def test_evaluate_rule_matches_legacy_on_random_rules(program, db):
    interp = as_interpretation(program, db, theta_legacy(program, db))
    arities = program.arities
    for rule in program.rules:
        assert evaluate_rule(rule, interp, arities) == evaluate_rule_legacy(
            rule, interp, arities
        )


@given(random_programs(include_zeroary=True), small_databases())
def test_three_way_executor_equivalence_on_random_rules(program, db):
    # Evaluate against a non-trivial interpretation (one legacy Theta step)
    # so negated IDB literals actually exclude something.
    interp = as_interpretation(program, db, theta_legacy(program, db))
    arities = program.arities
    for rule in program.rules:
        assert_three_way(rule, interp, arities)


@given(random_programs(include_zeroary=True), small_databases())
def test_batch_bindings_match_dict_bindings_under_total_heads(program, db):
    # With a pseudo-head naming every rule variable (the grounder's
    # construction) no variable is existence-projected, so the two
    # executors must produce identical *binding sets*, not just head sets.
    from repro.core.literals import Atom
    from repro.core.rules import Rule

    interp = as_interpretation(program, db, theta_legacy(program, db))
    for rule in program.rules:
        all_vars = sorted(rule.variables(), key=lambda v: v.name)
        pseudo = Rule(Atom("__all__", tuple(all_vars)), rule.body)
        plan = compile_rule(pseudo)
        batch = {frozenset(b.items()) for b in solve_plan(plan, interp)}
        dicts = {frozenset(b.items()) for b in solve_plan_rows_legacy(plan, interp)}
        assert batch == dicts


@given(random_programs(), small_databases())
def test_theta_matches_legacy_theta(program, db):
    # Compare along a whole non-cumulative iteration, not just round 1.
    current = empty_idb(program)
    for _ in range(4):
        compiled = theta(program, db, current)
        legacy = theta_legacy(program, db, current)
        assert idb_equal(compiled, legacy)
        current = compiled


@pytest.mark.parametrize(
    "source",
    [
        # Repeated variables in body atoms and head.
        "T(X) :- E(X, X). S(X, X) :- E(X, Y), E(Y, X).",
        # Constants in body and head argument positions.
        "T(X) :- E(1, X). S(2, Y) :- E(Y, 2), !T(2).",
        # Unsafe rules: completion over the whole universe.
        "T(Z) :- !S(U, U), !T(W). S(X, Y) :- E(X, Y).",
        # Pure cross product plus interleaved comparisons.
        "S(X, Y) :- T(X), T(Y), X != Y. T(X) :- E(X, Y), X = Y.",
        # Filters only ready during completion.
        "T(X) :- !E(X, X). S(X, Y) :- !E(X, Y), X != Y.",
        # The paper's toggle gadget: every variable completed, negation-only.
        "T(Z) :- !Q(U), !T(W). Q(X) :- Q(X).",
        # Fully-unsafe rules: every variable of every rule is completed.
        "S(U, V) :- !E(U, V). T(W) :- !S(W, W).",
        # Repeated *head* variables fed by completion.
        "S(W, W) :- !T(W). T(X) :- E(X, Y).",
        # Zero-ary relations, positive and negated.
        "B() :- E(X, Y). T(X) :- E(X, Y), !B().",
        "B() :- !C(). C() :- E(X, X). T(Z) :- !B().",
        # Keyed complement: the negated atom mixes bound and completed vars.
        "S(X, W) :- E(X, Y), !S(X, W). T(X) :- E(X, Y), !S(Y, W).",
    ],
)
def test_compiled_rules_handle_hard_shapes(source):
    program = parse_program(source, carrier="T")
    db = Database(
        {1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 2), (2, 3), (3, 1)])]
    )
    current = empty_idb(program)
    for _ in range(4):
        interp = as_interpretation(program, db, current)
        for rule in program.rules:
            plan = compile_rule(rule, db=db)
            legacy = evaluate_rule_legacy(rule, interp, program.arities)
            assert execute_plan(plan, interp) == legacy
            assert execute_plan_rows_legacy(plan, interp) == legacy
        current = theta(program, db, current)


def test_plan_shape_for_transitive_closure():
    program = parse_program("S(X, Y) :- E(X, Z), S(Z, Y).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    plan = compile_rule(program.rules[0], db=db)
    # Two join steps, no completion, and the second step keyed on the
    # variable bound by the first.
    assert len(plan.steps) == 2
    assert not plan.completions
    first, second = plan.steps
    assert first.key_columns == ()  # nothing bound yet
    assert len(second.key_columns) == 1
    assert "join" in plan.describe()


def test_batch_plan_uses_antijoin_for_bound_negation():
    program = parse_program("T(X) :- E(X, Y), !T(Y).")
    plan = compile_rule(program.rules[0])
    kinds = [type(op) for op in plan.ops]
    assert AntiJoin in kinds
    assert ComplementJoin not in kinds and ExtendDomain not in kinds


def test_batch_plan_schedules_complement_join_for_unsafe_negation():
    # The E8 distance shape: completion variables feed a negated IDB atom,
    # and they are in the head, so the complement is materialised and
    # cross-joined rather than enumerated-then-filtered.
    program = parse_program(
        "S3(X, Y, U, V) :- E(X, Y), !S2(U, V). S2(X, Y) :- E(X, Y).",
        carrier="S3",
    )
    plan = compile_rule(program.rules[0])
    comp = [op for op in plan.ops if isinstance(op, ComplementJoin)]
    assert len(comp) == 1
    assert comp[0].pred == "S2" and not comp[0].exists_only
    assert not comp[0].bound_columns  # pure complement: no keyed positions
    assert not any(isinstance(op, ExtendDomain) for op in plan.ops)


def test_batch_plan_uses_existence_checks_for_projected_completions():
    # Theorem 1's guarded toggle: U and W are head-absent and feed one
    # negation each, so neither may multiply the row set.
    program = parse_program("T(Z) :- !Q(U), !T(W). Q(X) :- Q(X).", carrier="T")
    plan = compile_rule(program.rules[0])
    comp = [op for op in plan.ops if isinstance(op, ComplementJoin)]
    assert len(comp) == 2 and all(op.exists_only for op in comp)
    # Z is in the head: it still extends over the universe, but the
    # existence checks run first so they never see multiplied rows.
    extend_at = [i for i, op in enumerate(plan.ops) if isinstance(op, ExtendDomain)]
    comp_at = [i for i, op in enumerate(plan.ops) if isinstance(op, ComplementJoin)]
    assert extend_at and max(comp_at) < min(extend_at)
    # The schema carries only what downstream reads: Z, not U or W.
    assert [v.name for v in plan.schema] == ["Z"]


def test_batch_plan_keys_complement_on_bound_positions():
    program = parse_program("T(X) :- E(X, Y), !S(Y, W). S(X, Y) :- E(X, Y).")
    plan = compile_rule(program.rules[0])
    comp = [op for op in plan.ops if isinstance(op, ComplementJoin)]
    assert len(comp) == 1
    assert comp[0].bound_columns == (0,)  # keyed on the bound Y position
    assert comp[0].free_positions == (1,)
    assert comp[0].exists_only  # W is head-absent and feeds nothing else


def test_existence_checks_ignore_out_of_universe_tuples():
    # Rules can derive head constants the database never mentions; such
    # tuples must not make an existence-only complement check think the
    # relation covers the universe.  (Regression: the check used to
    # compare raw cardinalities against |A|^k.)
    program = parse_program("Q(2) :- . T(X) :- E(X, X), !Q(W).", carrier="T")
    db = Database({1}, [Relation("E", 2, [(1, 1)])])
    interp = as_interpretation(
        program, db, {"Q": Relation("Q", 1, [(2,)]), "T": Relation("T", 1, [])}
    )
    rule = program.rules[1]
    assert_three_way(rule, interp, program.arities)
    assert evaluate_rule(rule, interp) == {(1,)}
    # Keyed variant: the excluded projection carries the foreign value.
    program2 = parse_program("S(1, 2) :- . T(X) :- E(X, Y), !S(Y, W).", carrier="T")
    interp2 = as_interpretation(
        program2, db, {"S": Relation("S", 2, [(1, 2)]), "T": Relation("T", 1, [])}
    )
    assert_three_way(program2.rules[1], interp2, program2.arities)


@given(disconnected_programs(), small_databases())
def test_cross_product_bodies_survive_semijoin_reduction(program, db):
    # Bodies with disconnected variable graphs are pure cross products:
    # the semi-join pass has nothing to reduce through and must not drop
    # a component.  All three executors (batch with reduction on AND
    # off) agree with the legacy evaluator on every rule.
    interp = as_interpretation(program, db, theta_legacy(program, db))
    arities = program.arities
    for rule in program.rules:
        assert_three_way(rule, interp, arities)


def test_semijoin_steps_skip_disconnected_components():
    # E(X, Y) x E(U, W): no shared variable, no reduction step.
    program = parse_program("S(X, U) :- E(X, Y), E(U, W).")
    plan = compile_rule(program.rules[0])
    assert plan.semijoin_steps == ()


def test_semijoin_reduces_scan_side_only_when_probes_cannot():
    # TC body E(X, Z), S(Z, Y): the forward step (reduce S by E on S's
    # column 0) is dropped — the join already probes S keyed on that
    # column — while the backward step (reduce the scanned E by S) stays.
    program = parse_program("S(X, Y) :- E(X, Z), S(Z, Y).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    plan = compile_rule(program.rules[0], db=db)
    assert len(plan.semijoin_steps) == 1
    (step,) = plan.semijoin_steps
    assert plan.steps[step.target].pred == "E"
    assert plan.steps[step.source].pred == "S"
    assert "semi-join" in plan.describe()


def test_semijoin_reduction_prunes_dead_scan_tuples():
    # Q(X, Y) :- Big(X, Z), SEL(Z, Y): only Big tuples whose Z appears in
    # SEL can contribute; with the reduction on, the scan side is cut
    # down before rows are materialised, and results are identical.
    program = parse_program("Q(X, Y) :- Big(X, Z), SEL(Z, Y).", carrier="Q")
    db = Database(
        set(range(10)),
        [
            Relation("Big", 2, [(i, i % 5) for i in range(5, 10)]),
            Relation("SEL", 2, [(0, 9), (1, 9)]),
        ],
    )
    rule = program.rules[0]
    plan = compile_rule(rule, db=db)
    assert plan.semijoin_steps  # Big and SEL share Z
    reduced = execute_plan(plan, db, semijoin=True)
    unreduced = execute_plan(plan, db, semijoin=False)
    assert reduced == unreduced == {(5, 9), (6, 9)}


def test_program_plan_consequences_groups_by_head():
    program = parse_program("T(X) :- E(X, Y). S(X, Y) :- E(X, Y).")
    db = Database({1, 2}, [Relation("E", 2, [(1, 2)])])
    plan = compile_program(program, db)
    derived = plan.consequences(as_interpretation(program, db))
    assert derived == {"T": {(1,)}, "S": {(1, 2)}}


# ----------------------------------------------------------------------
# Cross-engine equivalence against the legacy uncompiled path
# ----------------------------------------------------------------------


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_naive_equals_legacy_iteration(program, db):
    assert idb_equal(
        naive_least_fixpoint(program, db).idb, legacy_least_fixpoint(program, db)
    )


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_seminaive_equals_legacy_iteration(program, db):
    assert idb_equal(
        seminaive_least_fixpoint(program, db).idb,
        legacy_least_fixpoint(program, db),
    )


@settings(max_examples=25)
@given(random_programs(), small_databases())
def test_compiled_inflationary_equals_legacy_iteration(program, db):
    assert idb_equal(
        inflationary_semantics(program, db).idb, legacy_inflationary(program, db)
    )


@settings(max_examples=25)
@given(random_programs(), small_databases())
def test_compiled_incremental_equals_legacy_iteration(program, db):
    assert idb_equal(
        incremental_inflationary_semantics(program, db).idb,
        legacy_inflationary(program, db),
    )


@settings(max_examples=25)
@given(positive_programs(), small_databases())
def test_compiled_stratified_equals_legacy_iteration(program, db):
    # Positive programs are trivially stratifiable (one stratum) and their
    # stratified semantics is the least fixpoint.
    assert idb_equal(
        stratified_semantics(program, db).idb, legacy_least_fixpoint(program, db)
    )
