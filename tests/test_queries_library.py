"""Tests for the canonical programs of the paper."""


from repro.analysis import ProgramClass, classify
from repro.core.semantics import inflationary_semantics, naive_least_fixpoint
from repro.graphs import generators as gg, graph_to_database
from repro.graphs.algorithms import transitive_closure
from repro.queries import (
    distance_program,
    guarded_toggle_program,
    pi1,
    pi2,
    pi3,
    reachable_from_source_program,
    same_generation_program,
    tc_complement_stratified,
    toggle_program,
    transitive_closure_program,
    win_move_program,
)
from repro import Database, Relation


def test_pi1_shape():
    p = pi1()
    assert p.idb_predicates == {"T"} and p.edb_predicates == {"E"}
    assert classify(p) is ProgramClass.GENERAL


def test_pi2_carrier_and_class():
    p = pi2()
    assert p.carrier == "S2"
    assert p.arity("S2") == 4
    assert classify(p) is ProgramClass.STRATIFIED


def test_pi3_is_positive_tc():
    p = pi3()
    assert classify(p) is ProgramClass.POSITIVE
    db = graph_to_database(gg.path(4))
    result = naive_least_fixpoint(p, db)
    assert set(result.idb["S"].tuples) == set(transitive_closure(gg.path(4)))


def test_transitive_closure_custom_idb_name():
    p = transitive_closure_program(idb="TC")
    assert p.idb_predicates == {"TC"}


def test_toggle_has_no_fixpoint_anywhere():
    from repro.core.satreduction import has_fixpoint

    p = toggle_program()
    for n in (1, 2, 3):
        assert not has_fixpoint(p, Database(set(range(n + 1)), []))


def test_guarded_toggle_fixpoint_iff_q_full():
    """Theorem 1's gadget: fixpoint exists iff Q = A (here: Q must make
    itself full via Q(x) :- Q(x), which any subset satisfies -- so the
    fixpoints are exactly those with Q full and T empty)."""
    from repro.core.satreduction import enumerate_fixpoints_sat

    p = guarded_toggle_program()
    db = Database({1, 2}, [])
    points = list(enumerate_fixpoints_sat(p, db))
    assert len(points) == 1
    only = points[0]
    assert len(only["Q"]) == 2 and len(only["T"]) == 0


def test_pi2_inflationary_runs():
    db = graph_to_database(gg.path(3))
    result = inflationary_semantics(pi2(), db)
    # S1 reaches full TC; S2 holds (TC-pair, non-TC-pair) quadruples seen
    # during the staged iteration.
    assert set(result.relation("S1").tuples) == set(transitive_closure(gg.path(3)))
    assert result.relation("S2").arity == 4


def test_win_move_unstratifiable():
    from repro.core.semantics import is_stratifiable

    assert not is_stratifiable(win_move_program())


def test_same_generation():
    p = same_generation_program()
    #       1
    #      / \
    #     2   3
    #    /     \
    #   4       5
    db = Database(
        {1, 2, 3, 4, 5},
        [Relation("P", 2, [(1, 2), (1, 3), (2, 4), (3, 5)])],
    )
    result = naive_least_fixpoint(p, db)
    sg = set(result.idb["SG"].tuples)
    assert (2, 3) in sg and (4, 5) in sg
    assert (2, 5) not in sg


def test_reachable_from_source():
    p = reachable_from_source_program()
    db = Database(
        {1, 2, 3, 4},
        [Relation("E", 2, [(1, 2), (2, 3)]), Relation("Src", 1, [(1,)])],
    )
    result = naive_least_fixpoint(p, db)
    assert set(result.idb["REACH"].tuples) == {(1,), (2,), (3,)}


def test_tc_complement_classification():
    assert classify(tc_complement_stratified()) is ProgramClass.STRATIFIED


def test_distance_program_carrier():
    assert distance_program().carrier == "S3"
