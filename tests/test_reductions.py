"""Tests for the paper's reductions: Example 1, Lemma 1, Theorem 4, GJS76."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operator import is_fixpoint
from repro.core.satreduction import (
    count_fixpoints_sat,
    enumerate_fixpoints_sat,
    has_fixpoint,
    has_unique_fixpoint,
)
from repro.graphs import generators as gg
from repro.graphs.algorithms import count_3colorings, is_3colorable
from repro.graphs.digraph import Digraph
from repro.reductions.coloring import (
    coloring_database,
    coloring_to_fixpoint,
    fixpoint_to_coloring,
    pi_col,
)
from repro.reductions.sat_encoding import (
    assignment_to_fixpoint,
    cnf_to_database,
    database_to_cnf,
    fixpoint_to_assignment,
    pi_sat,
)
from repro.reductions.sat_to_coloring import decode_coloring, sat_to_coloring
from repro.reductions.succinct_coloring import binary_database, pi_sc
from repro.circuits.builders import (
    complete_graph_circuit,
    empty_graph_circuit,
    explicit_graph_circuit,
    hypercube_circuit,
)
from repro.workloads import cnf_gen


class TestExample1:
    """pi_SAT: fixpoints <-> satisfying assignments."""

    def test_structure(self):
        p = pi_sat()
        assert p.edb_predicates == {"V", "P", "N"}
        assert p.idb_predicates == {"S", "Q", "T"}

    def test_database_roundtrip(self):
        """D(I) -> I(D) preserves the instance up to literal/clause order
        (databases are sets, so the original ordering is unrecoverable)."""
        inst = cnf_gen.random_kcnf(4, 6, 3, seed=2)
        back = database_to_cnf(cnf_to_database(inst))
        assert set(back.variables) == set(inst.variables)
        assert {frozenset(c) for c in back.clauses} == {
            frozenset(c) for c in inst.clauses
        }
        assert back.count_models() == inst.count_models()

    def test_assignment_to_fixpoint_is_fixpoint(self):
        inst = cnf_gen.fixed_instance_small()
        db = cnf_to_database(inst)
        assignment = inst.satisfying_assignments()[0]
        fp = assignment_to_fixpoint(inst, assignment, db)
        assert is_fixpoint(pi_sat(), db, fp)

    def test_fixpoint_to_assignment_satisfies(self):
        inst = cnf_gen.fixed_instance_small()
        db = cnf_to_database(inst)
        for fp in enumerate_fixpoints_sat(pi_sat(), db):
            assignment = fixpoint_to_assignment(inst, fp)
            assert inst.is_satisfied_by(assignment)

    @given(st.integers(0, 6))
    @settings(max_examples=7)
    def test_fixpoint_count_equals_model_count(self, seed):
        inst = cnf_gen.random_kcnf(4, 8, 3, seed=seed)
        db = cnf_to_database(inst)
        assert count_fixpoints_sat(pi_sat(), db) == inst.count_models()

    def test_unsat_no_fixpoint(self):
        db = cnf_to_database(cnf_gen.unsatisfiable_instance())
        assert not has_fixpoint(pi_sat(), db)

    def test_theorem2_unique_correspondence(self):
        unique = cnf_gen.unique_model_instance(4, seed=1)
        assert has_unique_fixpoint(pi_sat(), cnf_to_database(unique))
        multi = cnf_gen.fixed_instance_small()
        assert not has_unique_fixpoint(pi_sat(), cnf_to_database(multi))


class TestLemma1:
    """pi_COL: fixpoints <-> proper 3-colorings."""

    def test_existence_tracks_colorability(self):
        for graph in (gg.complete(4), gg.wheel(5), gg.wheel(6), gg.path(3)):
            db = coloring_database(graph)
            assert has_fixpoint(pi_col(), db) == is_3colorable(graph)

    def test_count_equals_colorings(self):
        triangle = gg.cycle(3).union(gg.cycle(3).reversed())
        db = coloring_database(triangle)
        assert count_fixpoints_sat(pi_col(), db) == count_3colorings(triangle) == 6

    def test_coloring_to_fixpoint(self):
        g = gg.path(3)
        coloring = {1: "R", 2: "B", 3: "G"}
        fp = coloring_to_fixpoint(g, coloring)
        assert is_fixpoint(pi_col(), coloring_database(g), fp)

    def test_coloring_to_fixpoint_rejects_bad_color(self):
        with pytest.raises(ValueError):
            coloring_to_fixpoint(gg.path(2), {1: "R", 2: "PURPLE"})

    def test_fixpoint_to_coloring_roundtrip(self):
        g = gg.path(3)
        db = coloring_database(g)
        for fp in enumerate_fixpoints_sat(pi_col(), db, limit=5):
            coloring = fixpoint_to_coloring(fp)
            assert set(coloring) == set(g.nodes)
            for pair in g.undirected_edges():
                u, v = tuple(pair)
                assert coloring[u] != coloring[v]


class TestTheorem4:
    """pi_SC: succinct 3-coloring as fixpoint existence over {0, 1}."""

    def test_program_has_no_edb(self):
        program = pi_sc(empty_graph_circuit(1))
        assert program.edb_predicates == frozenset()

    def test_positive_and_negative_instances(self):
        cases = [
            (empty_graph_circuit(2), True),
            (hypercube_circuit(2), True),       # C_4: bipartite
            (complete_graph_circuit(2), False), # K_4: not 3-colorable
        ]
        for sg, expected in cases:
            assert has_fixpoint(pi_sc(sg), binary_database()) == expected

    def test_agrees_with_explicit_expansion(self):
        k2 = Digraph([(0,), (1,)], [((0,), (1,)), ((1,), (0,))])
        sg = explicit_graph_circuit(k2, 1)
        assert has_fixpoint(pi_sc(sg), binary_database()) == is_3colorable(sg.expand())

    def test_fixpoint_count_equals_coloring_count(self):
        sg = hypercube_circuit(2)
        count = count_fixpoints_sat(pi_sc(sg), binary_database())
        assert count == count_3colorings(sg.expand()) == 18

    def test_gate_relations_forced_to_truth_tables(self):
        sg = hypercube_circuit(2)
        program = pi_sc(sg)
        fp = next(enumerate_fixpoints_sat(program, binary_database(), limit=1))
        out_rel = fp["G%d" % sg.circuit.output_gate]
        explicit = sg.expand()
        for u in explicit.nodes:
            for v in explicit.nodes:
                assert (tuple(u) + tuple(v) in out_rel) == ((u, v) in explicit.edges)


class TestGJS76:
    def test_sat_iff_colorable(self):
        for seed in range(4):
            inst = cnf_gen.random_kcnf(3, 5, 3, seed=seed)
            graph = sat_to_coloring(inst)
            assert inst.is_satisfiable() == is_3colorable(graph)

    def test_unsat_instance(self):
        assert not is_3colorable(sat_to_coloring(cnf_gen.unsatisfiable_instance()))

    def test_short_clauses_padded(self):
        inst = cnf_gen.CNFInstance(("x1",), ((("x1", True),),))
        assert is_3colorable(sat_to_coloring(inst))

    def test_wide_clause_rejected(self):
        inst = cnf_gen.CNFInstance(
            ("x1", "x2", "x3", "x4"),
            (tuple(("x%d" % i, True) for i in range(1, 5)),),
        )
        with pytest.raises(ValueError):
            sat_to_coloring(inst)

    def test_decode_coloring_yields_model(self):
        from repro.graphs.algorithms import enumerate_3colorings

        inst = cnf_gen.fixed_instance_small()
        graph = sat_to_coloring(inst)
        coloring = enumerate_3colorings(graph)[0]
        assignment = decode_coloring(inst, coloring)
        assert inst.is_satisfied_by(assignment)

    def test_pipeline_sat_to_coloring_to_pi_col(self):
        """End to end: CNF -> gadget graph -> pi_COL fixpoint existence."""
        inst = cnf_gen.fixed_instance_small()
        graph = sat_to_coloring(inst)
        db = coloring_database(graph)
        assert has_fixpoint(pi_col(), db) == inst.is_satisfiable()
