"""Unit tests for repro.db.relation."""

import pytest
from hypothesis import given, strategies as st

from repro.db.relation import Relation


def test_basic_construction():
    rel = Relation("E", 2, [(1, 2), (2, 3)])
    assert rel.name == "E"
    assert rel.arity == 2
    assert len(rel) == 2
    assert (1, 2) in rel
    assert (9, 9) not in rel


def test_duplicate_tuples_collapse():
    rel = Relation("E", 2, [(1, 2), (1, 2)])
    assert len(rel) == 1


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        Relation("E", 2, [(1, 2, 3)])


def test_negative_arity_rejected():
    with pytest.raises(ValueError):
        Relation("E", -1, [])


def test_zero_arity_relation_behaves_as_boolean():
    empty = Relation("Q", 0, [])
    full = Relation("Q", 0, [()])
    assert not empty
    assert full
    assert () in full


def test_empty_constructor():
    rel = Relation.empty("T", 1)
    assert len(rel) == 0
    assert rel.arity == 1


def test_full_constructor():
    rel = Relation.full("Q", 2, {1, 2})
    assert len(rel) == 4
    assert (1, 1) in rel and (2, 1) in rel


def test_full_arity_zero():
    rel = Relation.full("Q", 0, {1, 2})
    assert rel.tuples == frozenset({()})


def test_equality_is_by_value():
    a = Relation("E", 2, [(1, 2)])
    b = Relation("E", 2, [(1, 2)])
    c = Relation("F", 2, [(1, 2)])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_with_name_preserves_tuples():
    a = Relation("E", 2, [(1, 2)])
    b = a.with_name("F")
    assert b.name == "F"
    assert b.tuples == a.tuples


def test_union_intersection_difference():
    a = Relation("T", 1, [(1,), (2,)])
    b = Relation("T", 1, [(2,), (3,)])
    assert set(a.union(b).tuples) == {(1,), (2,), (3,)}
    assert set(a.intersection(b).tuples) == {(2,)}
    assert set(a.difference(b).tuples) == {(1,)}


def test_setops_arity_mismatch():
    a = Relation("T", 1, [(1,)])
    b = Relation("T", 2, [(1, 2)])
    with pytest.raises(ValueError):
        a.union(b)
    with pytest.raises(ValueError):
        a.issubset(b)


def test_complement():
    a = Relation("T", 1, [(1,)])
    comp = a.complement({1, 2, 3})
    assert set(comp.tuples) == {(2,), (3,)}


def test_issubset():
    a = Relation("T", 1, [(1,)])
    b = Relation("T", 1, [(1,), (2,)])
    assert a.issubset(b)
    assert not b.issubset(a)


def test_filter():
    a = Relation("E", 2, [(1, 2), (2, 1), (3, 3)])
    diag = a.filter(lambda t: t[0] == t[1])
    assert set(diag.tuples) == {(3, 3)}


def test_add():
    a = Relation("T", 1, [(1,)])
    b = a.add((2,), (3,))
    assert len(a) == 1  # immutability
    assert len(b) == 3


@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5))),
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5))),
)
def test_union_commutes_and_difference_disjoint(xs, ys):
    a = Relation("A", 2, xs)
    b = Relation("A", 2, ys)
    assert a.union(b).tuples == b.union(a).tuples
    assert not (a.difference(b).tuples & b.tuples)


@given(st.sets(st.tuples(st.integers(0, 3))))
def test_complement_is_involutive(xs):
    universe = set(range(0, 4))
    a = Relation("T", 1, xs)
    assert a.complement(universe).complement(universe) == a


def test_complement_on_value_and_cache():
    universe = frozenset({1, 2, 3})
    rel = Relation("S", 2, [(1, 1), (1, 2)])
    comp = rel.complement_on(universe)
    assert comp.arity == 2
    assert len(comp) == 9 - 2
    assert (1, 1) not in comp and (3, 3) in comp
    assert rel.complement_on(universe) is comp  # cached on the relation
    # A different universe is a different complement, cached separately.
    wider = rel.complement_on(frozenset({1, 2, 3, 4}))
    assert len(wider) == 16 - 2
    assert rel.complement_on(universe) is comp


def test_complement_on_zero_ary():
    empty = Relation("B", 0, [])
    full = Relation("B", 0, [()])
    assert set(empty.complement_on(frozenset({1}))) == {()}
    assert set(full.complement_on(frozenset({1}))) == set()
