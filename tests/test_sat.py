"""Tests for the SAT substrate: CNF, solver, counting, DIMACS."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.sat import (
    CNF,
    EnumerationLimitExceeded,
    Solver,
    count_models,
    enumerate_models,
    forced_literals,
    has_model,
    solve,
    unique_model,
)
from repro.sat import dimacs
from repro.sat.cnf import VarPool


def brute_force_models(clauses, n):
    out = []
    for bits in itertools.product([False, True], repeat=n):
        assignment = {i + 1: bits[i] for i in range(n)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            out.append(assignment)
    return out


def cnf_of(clauses, n):
    cnf = CNF()
    while cnf.pool.num_vars < n:
        cnf.pool.fresh()
    cnf.add_clauses(clauses)
    return cnf


class TestVarPool:
    def test_fresh_and_labels(self):
        pool = VarPool()
        a = pool.fresh("atom-a")
        b = pool.fresh()
        assert a == 1 and b == 2
        assert pool.label(a) == "atom-a"
        assert pool.label(b) is None
        assert pool.var("atom-a") == a  # memoised
        assert pool.labelled_vars() == {"atom-a": a}

    def test_duplicate_label_rejected(self):
        pool = VarPool()
        pool.fresh("x")
        with pytest.raises(ValueError):
            pool.fresh("x")


class TestCNF:
    def test_tseitin_and(self):
        cnf = CNF()
        a, b = cnf.pool.fresh(), cnf.pool.fresh()
        v = cnf.define_and([a, -b])
        cnf.add_unit(v)
        model = solve(cnf)
        assert model[a] is True and model[b] is False

    def test_tseitin_or(self):
        cnf = CNF()
        a, b = cnf.pool.fresh(), cnf.pool.fresh()
        v = cnf.define_or([a, b])
        cnf.add_unit(-v)
        model = solve(cnf)
        assert model[a] is False and model[b] is False

    def test_empty_junctions(self):
        cnf = CNF()
        t = cnf.define_and([])
        f = cnf.define_or([])
        model = solve(cnf)
        assert model[t] is True and model[f] is False

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([0])


class TestSolver:
    def test_empty_formula_sat(self):
        assert solve(CNF()) == {}

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.add_clause([])
        assert solve(cnf) is None

    def test_unit_conflict(self):
        cnf = cnf_of([(1,), (-1,)], 1)
        assert solve(cnf) is None

    def test_assumptions(self):
        cnf = cnf_of([(1, 2)], 2)
        assert solve(cnf, assumptions=(-1,))[2] is True
        assert solve(cnf, assumptions=(-1, -2)) is None

    def test_solver_reusable_after_unsat_assumptions(self):
        solver = Solver(cnf_of([(1, 2)], 2))
        assert solver.solve(assumptions=(-1, -2)) is None
        assert solver.solve() is not None

    def test_tautological_clause_ignored(self):
        cnf = cnf_of([(1, -1)], 1)
        assert count_models(cnf) == 2

    def test_pigeonhole_unsat(self):
        from repro.workloads.cnf_gen import pigeonhole

        inst = pigeonhole(3)
        ids = {v: i + 1 for i, v in enumerate(inst.variables)}
        clauses = [
            tuple(ids[v] if pos else -ids[v] for v, pos in clause)
            for clause in inst.clauses
        ]
        assert solve(cnf_of(clauses, len(ids))) is None

    @given(
        st.integers(1, 7).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(1, n).map(lambda v: v)
                        .flatmap(lambda v: st.sampled_from([v, -v])),
                        min_size=1,
                        max_size=3,
                    ).map(tuple),
                    max_size=15,
                ),
            )
        )
    )
    def test_against_truth_tables(self, case):
        n, clauses = case
        expected = brute_force_models(clauses, n)
        cnf = cnf_of(clauses, n)
        model = solve(cnf)
        assert (model is not None) == bool(expected)
        if model is not None:
            assert all(
                any(model[abs(l)] == (l > 0) for l in clause)
                for clause in clauses
            )
        assert count_models(cnf) == len(expected)


class TestCounting:
    def test_enumerate_projected(self):
        cnf = cnf_of([(1, 2)], 3)  # var 3 free
        full = list(enumerate_models(cnf))
        proj = list(enumerate_models(cnf, over_vars=[1, 2]))
        assert len(full) == 6
        assert len(proj) == 3

    def test_limit(self):
        cnf = cnf_of([], 4)
        with pytest.raises(EnumerationLimitExceeded):
            list(enumerate_models(cnf, limit=3))

    def test_unique_model(self):
        assert unique_model(cnf_of([(1,), (2,)], 2)) == {1: True, 2: True}
        assert unique_model(cnf_of([(1, 2)], 2)) is None
        assert unique_model(cnf_of([(1,), (-1,)], 1)) is None

    def test_has_model(self):
        assert has_model(cnf_of([(1,)], 1))
        assert not has_model(cnf_of([(1,), (-1,)], 1))

    def test_forced_literals(self):
        cnf = cnf_of([(1,), (1, 2), (-3, 2), (3, 2)], 3)
        forced = forced_literals(cnf, [1, 2, 3])
        assert forced[1] is True
        assert forced[2] is True  # (-3 or 2) and (3 or 2) force 2
        assert forced[3] is None

    def test_forced_literals_unsat_raises(self):
        with pytest.raises(ValueError):
            forced_literals(cnf_of([(1,), (-1,)], 1), [1])


class TestDimacs:
    def test_roundtrip(self):
        cnf = cnf_of([(1, -2), (2, 3)], 3)
        text = dimacs.dumps(cnf, comment="hello\nworld")
        back = dimacs.loads(text)
        assert back.clauses == cnf.clauses
        assert back.num_vars == 3

    def test_multiline_clause(self):
        back = dimacs.loads("p cnf 2 1\n1\n-2 0\n")
        assert back.clauses == [(1, -2)]

    def test_declared_vars_respected(self):
        back = dimacs.loads("p cnf 5 1\n1 0\n")
        assert back.num_vars == 5

    def test_unterminated_clause_rejected(self):
        with pytest.raises(ValueError):
            dimacs.loads("p cnf 1 1\n1")

    def test_file_roundtrip(self, tmp_path):
        cnf = cnf_of([(1, 2)], 2)
        path = tmp_path / "f.cnf"
        dimacs.write_file(cnf, path)
        assert dimacs.read_file(path).clauses == cnf.clauses
