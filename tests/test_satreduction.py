"""Tests for SAT-backed fixpoint analysis (the Theorems 1-3 machinery)."""

from hypothesis import given, settings

from repro.core.fixpoint import idb_equal
from repro.core.grounding import ground_program
from repro.core.operator import is_fixpoint
from repro.core.satreduction import (
    FixpointSAT,
    analyze_fixpoints,
    count_fixpoints_sat,
    enumerate_fixpoints_sat,
    find_fixpoint,
    has_fixpoint,
    has_unique_fixpoint,
    least_fixpoint,
    unique_fixpoint,
)
from repro.core.semantics import all_fixpoints, naive_least_fixpoint
from repro.graphs import generators as gg, graph_to_database

from strategies import random_programs, small_databases


class TestEncoding:
    def test_models_decode_to_fixpoints(self, pi1_program, cycle4_db):
        enc = FixpointSAT(pi1_program, cycle4_db)
        from repro.sat import Solver

        model = Solver(enc.cnf).solve()
        decoded = enc.decode_idb(model)
        assert is_fixpoint(pi1_program, cycle4_db, decoded)

    def test_atom_vars_are_labelled(self, pi1_program, path4_db):
        enc = FixpointSAT(pi1_program, path4_db)
        for atom, var in enc.atom_var.items():
            assert enc.cnf.pool.label(var) == atom


class TestDecisions:
    def test_existence(self, pi1_program):
        assert has_fixpoint(pi1_program, graph_to_database(gg.path(5)))
        assert not has_fixpoint(pi1_program, graph_to_database(gg.cycle(5)))

    def test_find_returns_verified_fixpoint(self, pi1_program, cycle4_db):
        fp = find_fixpoint(pi1_program, cycle4_db)
        assert is_fixpoint(pi1_program, cycle4_db, fp)

    def test_find_none_when_absent(self, pi1_program, cycle3_db):
        assert find_fixpoint(pi1_program, cycle3_db) is None

    def test_unique(self, pi1_program, path4_db, cycle4_db, cycle3_db):
        assert has_unique_fixpoint(pi1_program, path4_db)
        assert not has_unique_fixpoint(pi1_program, cycle4_db)  # two
        assert not has_unique_fixpoint(pi1_program, cycle3_db)  # zero
        unique = unique_fixpoint(pi1_program, path4_db)
        assert set(unique["T"].tuples) == {(2,), (4,)}

    def test_enumeration_limit(self, pi1_program, cycle4_db):
        assert len(list(enumerate_fixpoints_sat(pi1_program, cycle4_db, limit=1))) == 1

    def test_count_2n_on_gn(self, pi1_program):
        for n in (1, 2, 3, 4):
            db = graph_to_database(gg.disjoint_cycles(n))
            assert count_fixpoints_sat(pi1_program, db) == 2 ** n


class TestLeastFixpoint:
    def test_no_fixpoint_reports_cleanly(self, pi1_program, cycle3_db):
        report = least_fixpoint(pi1_program, cycle3_db)
        assert not report.exists
        assert report.least is None and report.intersection is None
        assert report.oracle_calls == 1

    def test_unique_is_least(self, pi1_program, path4_db):
        report = least_fixpoint(pi1_program, path4_db)
        assert report.least_exists
        assert set(report.least["T"].tuples) == {(2,), (4,)}

    def test_even_cycle_no_least(self, pi1_program, cycle4_db):
        """Two incomparable fixpoints: intersection (empty set) is not a
        fixpoint — the paper's canonical example."""
        report = least_fixpoint(pi1_program, cycle4_db)
        assert report.exists and not report.least_exists
        assert all(len(r) == 0 for r in report.intersection.values())

    def test_positive_program_least_is_standard_semantics(self, tc_program):
        db = graph_to_database(gg.random_digraph(5, 0.35, seed=4))
        report = least_fixpoint(tc_program, db)
        assert report.least_exists
        assert idb_equal(report.least, naive_least_fixpoint(tc_program, db).idb)

    def test_oracle_calls_polynomial(self, pi1_program):
        db = graph_to_database(gg.disjoint_cycles(3))
        report = least_fixpoint(pi1_program, db)
        gp = ground_program(pi1_program, db)
        assert report.oracle_calls <= 1 + len(gp.derivable)


class TestAnalyze:
    def test_full_analysis_on_path(self, pi1_program, path4_db):
        analysis = analyze_fixpoints(pi1_program, path4_db)
        assert analysis.exists and analysis.unique
        assert analysis.count == 1 and analysis.least_exists

    def test_full_analysis_no_fixpoint(self, pi1_program, cycle3_db):
        analysis = analyze_fixpoints(pi1_program, cycle3_db)
        assert not analysis.exists and analysis.count == 0
        assert analysis.sample is None

    def test_count_limit_yields_none(self, pi1_program):
        db = graph_to_database(gg.disjoint_cycles(4))  # 16 fixpoints
        analysis = analyze_fixpoints(pi1_program, db, count_limit=5)
        assert analysis.count is None
        assert analysis.exists


# ----------------------------------------------------------------------
# Cross-validation against brute force (the load-bearing property test)
# ----------------------------------------------------------------------


@given(random_programs(max_rules=3), small_databases(max_size=3))
@settings(max_examples=30)
def test_sat_agrees_with_brute_force(program, db):
    """SAT-based enumeration and exhaustive subset enumeration agree."""
    gp = ground_program(program, db)
    if len(gp.derivable) > 14:
        return  # keep the brute-force side cheap
    brute = {
        frozenset(gp.from_idb_map(m))
        for m in all_fixpoints(program, db, limit_atoms=14, ground=gp)
    }
    sat = {
        frozenset(gp.from_idb_map(m))
        for m in enumerate_fixpoints_sat(program, db, ground=gp)
    }
    assert brute == sat


@given(random_programs(max_rules=3), small_databases(max_size=3))
@settings(max_examples=30)
def test_every_sat_fixpoint_verifies_via_theta(program, db):
    for fp in enumerate_fixpoints_sat(program, db, limit=8):
        assert is_fixpoint(program, db, fp)


@given(random_programs(max_rules=3), small_databases(max_size=3))
@settings(max_examples=20)
def test_least_fixpoint_report_consistent(program, db):
    """When a least fixpoint is reported it is a fixpoint below every
    enumerated fixpoint; when not, no enumerated fixpoint is below all."""
    from repro.core.fixpoint import idb_leq, least_among

    report = least_fixpoint(program, db)
    points = list(enumerate_fixpoints_sat(program, db, limit=50))
    if report.least_exists:
        assert is_fixpoint(program, db, report.least)
        assert all(idb_leq(report.least, other) for other in points)
    else:
        assert least_among(points) is None
