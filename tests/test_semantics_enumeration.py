"""Tests for brute-force fixpoint enumeration."""

import pytest

from repro import Database, parse_program
from repro.core.semantics import (
    EnumerationLimitError,
    all_fixpoints,
    count_fixpoints,
)
from repro.graphs import generators as gg, graph_to_database


def test_pi1_path_unique(pi1_program, path4_db):
    points = all_fixpoints(pi1_program, path4_db)
    assert len(points) == 1
    assert set(points[0]["T"].tuples) == {(2,), (4,)}


def test_pi1_odd_cycle_none(pi1_program, cycle3_db):
    assert count_fixpoints(pi1_program, cycle3_db) == 0


def test_pi1_even_cycle_two(pi1_program, cycle4_db):
    points = all_fixpoints(pi1_program, cycle4_db)
    values = {tuple(sorted(p["T"].tuples)) for p in points}
    assert values == {((1,), (3,)), ((2,), (4,))}


def test_tautological_rule_many_fixpoints():
    """S(x) :- S(x): every subset of the universe is a fixpoint."""
    p = parse_program("S(X) :- S(X).")
    db = Database({1, 2, 3}, [])
    assert count_fixpoints(p, db) == 8


def test_limit_guard():
    p = parse_program("S(X, Y) :- S(X, Y).")
    db = Database(set(range(10)), [])  # 100 derivable atoms
    with pytest.raises(EnumerationLimitError):
        count_fixpoints(p, db, limit_atoms=20)


def test_positive_program_single_fixpoint_question(tc_program, path4_db):
    """TC has multiple fixpoints (any transitively closed superset of E
    restricted to derivable pairs); the least one is the semantics."""
    points = all_fixpoints(tc_program, path4_db)
    assert len(points) >= 1
    from repro.core.semantics import naive_least_fixpoint
    least = naive_least_fixpoint(tc_program, path4_db).idb
    sizes = [len(p["S"]) for p in points]
    assert min(sizes) == len(least["S"])


def test_matches_sat_enumeration_on_small_cases(pi1_program):
    from repro.core.satreduction import count_fixpoints_sat

    for g in (gg.path(3), gg.cycle(3), gg.cycle(4), gg.disjoint_cycles(2)):
        db = graph_to_database(g)
        assert count_fixpoints(pi1_program, db) == count_fixpoints_sat(
            pi1_program, db
        )
