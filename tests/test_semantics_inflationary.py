"""Tests for Inflationary DATALOG (Section 4)."""

import pytest
from hypothesis import given

from repro import Database, parse_program
from repro.core.fixpoint import idb_leq
from repro.core.operator import is_fixpoint, theta
from repro.core.semantics import inflationary_semantics, theta_stage

from strategies import random_programs, small_databases


def test_toggle_gives_full_relation():
    """Paper: 'For the program T(x) :- !T(y) we have Theta^inf = A'."""
    p = parse_program("T(X) :- !T(Y).")
    db = Database({1, 2, 3}, [])
    result = inflationary_semantics(p, db)
    assert set(result.carrier_value.tuples) == {(1,), (2,), (3,)}
    assert result.rounds == 1


def test_pi1_gives_nodes_with_predecessor(pi1_program, path4_db):
    """Paper: 'Theta^inf = {x : exists y E(y, x)}' for pi_1."""
    result = inflationary_semantics(pi1_program, path4_db)
    assert set(result.carrier_value.tuples) == {(2,), (3,), (4,)}
    assert result.rounds == 1


def test_result_need_not_be_a_fixpoint():
    """Section 4's warning: Theta^inf may fail to be a fixpoint of Theta."""
    p = parse_program("T(X) :- !T(Y).")
    db = Database({1, 2}, [])
    result = inflationary_semantics(p, db)
    assert not is_fixpoint(p, db, result.idb)
    assert len(theta(p, db, result.idb)["T"]) == 0


def test_coincides_with_lfp_on_tc():
    from repro.core.semantics import naive_least_fixpoint
    from repro.graphs import generators as gg, graph_to_database

    tc = parse_program("S(X, Y) :- E(X, Y). S(X, Y) :- E(X, Z), S(Z, Y).")
    db = graph_to_database(gg.random_digraph(6, 0.3, seed=11))
    assert inflationary_semantics(tc, db).idb == naive_least_fixpoint(tc, db).idb


def test_trace_is_increasing(pi1_program, cycle4_db):
    result = inflationary_semantics(pi1_program, cycle4_db, keep_trace=True)
    for earlier, later in zip(result.trace, result.trace[1:]):
        assert idb_leq(earlier, later)


def test_stage_function_matches_trace(tc_program, path4_db):
    result = inflationary_semantics(tc_program, path4_db, keep_trace=True)
    for n, snapshot in enumerate(result.trace):
        assert theta_stage(tc_program, path4_db, n) == snapshot


def test_stage_rejects_negative():
    p = parse_program("T(X) :- !T(Y).")
    with pytest.raises(ValueError):
        theta_stage(p, Database({1}, []), -1)


def test_distance_program_on_path():
    """Proposition 2, small concrete check: D(1,3, 1,2) fails (2 > 1) and
    D(1,2, 1,3) holds (1 <= 2) on the path 1->2->3."""
    from repro.queries import distance_program
    from repro.graphs import generators as gg, graph_to_database

    db = graph_to_database(gg.path(3))
    carrier = inflationary_semantics(distance_program(), db).carrier_value
    assert (1, 2, 1, 3) in carrier
    assert (1, 3, 1, 2) not in carrier
    assert (1, 3, 3, 1) in carrier  # no path 3 -> 1 at all


@given(random_programs(), small_databases())
def test_total_on_all_programs_and_bounded(program, db):
    """Inflationary semantics is defined on every program and stabilises
    within the |A|^k bound (the paper's polynomial-time argument)."""
    result = inflationary_semantics(program, db)
    n = len(db.universe)
    bound = sum(n ** program.arity(p) for p in program.idb_predicates)
    assert result.rounds <= bound
    # Applying one more inflationary step changes nothing.
    from repro.core.semantics import inflationary_step

    assert inflationary_step(program, db, result.idb) == result.idb


@given(random_programs(), small_databases())
def test_stages_are_increasing(program, db):
    result = inflationary_semantics(program, db, keep_trace=True)
    for earlier, later in zip(result.trace, result.trace[1:]):
        assert idb_leq(earlier, later)
