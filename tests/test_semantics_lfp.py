"""Tests for naive and semi-naive least-fixpoint engines."""

import pytest
from hypothesis import given

from repro import Database, Relation, parse_program
from repro.core.fixpoint import idb_equal
from repro.core.operator import is_fixpoint
from repro.core.semantics import (
    SemanticsError,
    inflationary_semantics,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)

from strategies import positive_programs, small_databases


class TestNaive:
    def test_tc_on_path(self, tc_program, path4_db):
        result = naive_least_fixpoint(tc_program, path4_db)
        assert set(result.idb["S"].tuples) == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)
        }
        assert result.engine == "naive"

    def test_result_is_a_fixpoint(self, tc_program, path4_db):
        result = naive_least_fixpoint(tc_program, path4_db)
        assert is_fixpoint(tc_program, path4_db, result.idb)

    def test_rejects_negated_idb(self, pi1_program, path4_db):
        with pytest.raises(SemanticsError):
            naive_least_fixpoint(pi1_program, path4_db)

    def test_accepts_semipositive(self, path4_db):
        p = parse_program("T(X) :- E(X, Y), !E(Y, X).")
        result = naive_least_fixpoint(p, path4_db)
        assert set(result.idb["T"].tuples) == {(1,), (2,), (3,)}

    def test_accepts_inequality_over_edb(self, path4_db):
        p = parse_program("T(X) :- E(X, Y), X != Y.")
        naive_least_fixpoint(p, path4_db)

    def test_trace(self, tc_program, path4_db):
        result = naive_least_fixpoint(tc_program, path4_db, keep_trace=True)
        assert len(result.trace) == result.rounds + 1
        # Stages increase.
        for earlier, later in zip(result.trace, result.trace[1:]):
            assert earlier["S"].issubset(later["S"])

    def test_max_rounds_cap(self, tc_program, path4_db):
        with pytest.raises(SemanticsError):
            naive_least_fixpoint(tc_program, path4_db, max_rounds=1)

    def test_carrier_value(self, tc_program, path4_db):
        assert naive_least_fixpoint(tc_program, path4_db).carrier_value.name == "S"


class TestSemiNaive:
    def test_agrees_with_naive_on_tc(self, tc_program, path4_db):
        a = naive_least_fixpoint(tc_program, path4_db)
        b = seminaive_least_fixpoint(tc_program, path4_db)
        assert idb_equal(a.idb, b.idb)

    def test_rejects_negated_idb(self, pi1_program, path4_db):
        with pytest.raises(SemanticsError):
            seminaive_least_fixpoint(pi1_program, path4_db)

    def test_multi_idb_program(self, path4_db):
        p = parse_program(
            """
            A(X) :- E(X, Y).
            B(X, Y) :- A(X), E(X, Y).
            B(X, Y) :- B(X, Z), E(Z, Y).
            """,
            carrier="B",
        )
        a = naive_least_fixpoint(p, path4_db)
        b = seminaive_least_fixpoint(p, path4_db)
        assert idb_equal(a.idb, b.idb)

    def test_cyclic_graph(self, tc_program, cycle4_db):
        a = naive_least_fixpoint(tc_program, cycle4_db)
        b = seminaive_least_fixpoint(tc_program, cycle4_db)
        assert idb_equal(a.idb, b.idb)
        assert len(a.idb["S"]) == 16  # full closure on a cycle

    def test_empty_edb(self, tc_program):
        db = Database({1, 2}, [Relation("E", 2, [])])
        assert len(seminaive_least_fixpoint(tc_program, db).idb["S"]) == 0


@given(positive_programs(), small_databases())
def test_naive_equals_seminaive_equals_inflationary(program, db):
    """The paper's conservativity claim, property-tested: for DATALOG
    programs the three engines compute the same relations."""
    a = naive_least_fixpoint(program, db)
    b = seminaive_least_fixpoint(program, db)
    c = inflationary_semantics(program, db)
    assert idb_equal(a.idb, b.idb)
    assert idb_equal(a.idb, c.idb)


@given(positive_programs(), small_databases())
def test_least_fixpoint_is_fixpoint_and_minimal_on_probes(program, db):
    result = naive_least_fixpoint(program, db)
    assert is_fixpoint(program, db, result.idb)
