"""Tests for stratified semantics and stratification."""

import pytest

from repro import Database, Relation, parse_program
from repro.core.semantics import (
    NotStratifiableError,
    is_stratifiable,
    stratified_semantics,
    stratify,
)
from repro.graphs import generators as gg, graph_to_database
from repro.graphs.algorithms import transitive_closure
from repro.queries import distance_program, tc_complement_stratified


def test_stratify_tc_complement():
    p = tc_complement_stratified()
    strata = stratify(p)
    assert strata == [frozenset({"TC"}), frozenset({"NOTC"})]


def test_unstratifiable_programs_detected(pi1_program):
    assert not is_stratifiable(pi1_program)
    with pytest.raises(NotStratifiableError):
        stratified_semantics(pi1_program, graph_to_database(gg.path(3)))


def test_positive_program_is_single_stratum(tc_program):
    assert stratify(tc_program) == [frozenset({"S"})]


def test_tc_complement_value(path4_db):
    result = stratified_semantics(tc_complement_stratified(), path4_db)
    tc = transitive_closure(gg.path(4))
    expected = {
        (a, b)
        for a in range(1, 5)
        for b in range(1, 5)
        if (a, b) not in tc
    }
    assert set(result.carrier_value.tuples) == expected


def test_distance_program_is_stratified_but_means_tc_pairs(path4_db):
    """Proposition 2's punchline: viewed as a stratified program, the
    distance program computes TC x not-TC, not the distance query."""
    program = distance_program()
    assert is_stratifiable(program)
    result = stratified_semantics(program, path4_db)
    tc = transitive_closure(gg.path(4))
    nodes = range(1, 5)
    expected = {
        (x, y, xs, ys)
        for (x, y) in tc
        for xs in nodes
        for ys in nodes
        if (xs, ys) not in tc
    }
    assert set(result.relation("S3").tuples) == expected
    assert result.stratum_of("S1") == 0
    assert result.stratum_of("S3") == 1


def test_stratum_of_unknown_raises(path4_db):
    result = stratified_semantics(tc_complement_stratified(), path4_db)
    with pytest.raises(KeyError):
        result.stratum_of("NOPE")


def test_three_strata_chain():
    p = parse_program(
        """
        A(X) :- E(X, Y).
        B(X) :- !A(X).
        C(X) :- !B(X), A(X).
        """,
        carrier="C",
    )
    strata = stratify(p)
    assert strata == [frozenset({"A"}), frozenset({"B"}), frozenset({"C"})]
    db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2)])])
    result = stratified_semantics(p, db)
    assert set(result.relation("A").tuples) == {(1,)}
    assert set(result.relation("B").tuples) == {(2,), (3,)}
    assert set(result.relation("C").tuples) == {(1,)}


def test_negation_within_same_scc_rejected():
    p = parse_program(
        """
        A(X) :- B(X).
        B(X) :- !A(X), E(X, Y).
        """,
        carrier="A",
    )
    assert not is_stratifiable(p)


def test_positive_recursion_inside_stratum_is_fine(path4_db):
    p = parse_program(
        """
        TC(X, Y) :- E(X, Y).
        TC(X, Y) :- E(X, Z), TC(Z, Y).
        FAR(X, Y) :- TC(X, Y), !E(X, Y).
        """,
        carrier="FAR",
    )
    result = stratified_semantics(p, path4_db)
    assert set(result.carrier_value.tuples) == {(1, 3), (1, 4), (2, 4)}


def test_agrees_with_semipositive_engine_when_applicable(path4_db):
    """On semipositive programs, stratified and least-fixpoint semantics
    coincide (a single stratum)."""
    from repro.core.semantics import naive_least_fixpoint

    p = parse_program("T(X) :- E(X, Y), !E(Y, X).")
    a = naive_least_fixpoint(p, path4_db)
    b = stratified_semantics(p, path4_db)
    assert a.idb == b.idb
