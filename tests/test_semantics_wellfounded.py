"""Tests for the well-founded semantics extension."""

from hypothesis import given

from repro import Database, Relation
from repro.core.semantics import (
    is_stratifiable,
    stratified_semantics,
    well_founded_semantics,
)
from repro.core.semantics.wellfounded import _least_model_of_reduct
from repro.graphs import generators as gg, graph_to_database
from repro.queries import tc_complement_stratified, win_move_program

from strategies import nonstratifiable_programs, random_programs, small_databases


def test_pi1_on_path_is_total(pi1_program, path4_db):
    """On L_4 the WFM is total and equals the unique fixpoint {2, 4}."""
    result = well_founded_semantics(pi1_program, path4_db)
    assert result.is_total
    assert set(result.true_idb()["T"].tuples) == {(2,), (4,)}


def test_pi1_on_odd_cycle_all_undefined(pi1_program, cycle3_db):
    """On C_3 there is no fixpoint; the WFM leaves every atom undefined."""
    result = well_founded_semantics(pi1_program, cycle3_db)
    assert not result.is_total
    assert set(result.undefined_idb()["T"].tuples) == {(1,), (2,), (3,)}
    assert len(result.true) == 0


def test_pi1_on_even_cycle_undefined(pi1_program, cycle4_db):
    """Two incomparable fixpoints: the WFM commits to neither."""
    result = well_founded_semantics(pi1_program, cycle4_db)
    assert not result.is_total
    assert len(result.undefined) == 4


def test_win_move_game_classification():
    """Win-move on a path: alternating win/lose from the dead end."""
    program = win_move_program()
    db = graph_to_database(gg.path(4))  # 1->2->3->4, node 4 has no move
    result = well_founded_semantics(program, db)
    assert result.is_total
    # Node 4 is lost (no moves), 3 wins (move to 4), 2 loses, 1 wins.
    assert set(result.true_idb()["WIN"].tuples) == {(3,), (1,)}


def test_win_move_mixed_graph():
    """A cycle with a tail: cycle atoms undefined, tail decided."""
    program = win_move_program()
    edges = [(1, 2), (2, 1), (2, 3)]  # 1 <-> 2, 2 -> 3 (dead end)
    db = Database({1, 2, 3}, [Relation("E", 2, edges)])
    result = well_founded_semantics(program, db)
    # 3 is lost; 2 wins by moving to 3; 1... moves only to 2 (won) => 1 loses.
    assert ("WIN", (2,)) in result.true
    assert ("WIN", (1,)) not in result.true
    assert ("WIN", (1,)) not in result.undefined  # decidedly false
    assert result.is_total


def test_total_wfm_matches_stratified_on_stratified_programs(path4_db):
    """For stratified programs the WFM is total and equals the stratified
    (perfect) model — the classical theorem, checked concretely."""
    program = tc_complement_stratified()
    wf = well_founded_semantics(program, path4_db)
    strat = stratified_semantics(program, path4_db)
    assert wf.is_total
    assert wf.true_idb() == strat.idb


def test_rounds_reported(pi1_program, path4_db):
    result = well_founded_semantics(pi1_program, path4_db)
    assert result.rounds >= 1


@given(nonstratifiable_programs(), small_databases())
def test_wfm_stability_equations(program, db):
    """``A(true) = possible`` and ``A(possible) = true`` — Van Gelder's
    characterization of the well-founded partial model as the extreme
    oscillating pair of the stability operator, checked on random
    *non-stratifiable* programs (negation cycles of both parities,
    win–move variants, mixed EDB/IDB negation) where no simpler engine
    could serve as the oracle."""
    from repro.core.grounding import ground_program

    gp = ground_program(program, db)
    wf = well_founded_semantics(program, db, ground=gp)
    true = set(wf.true)
    possible = true | set(wf.undefined)
    assert true.isdisjoint(wf.undefined)
    assert _least_model_of_reduct(gp, true) == possible
    assert _least_model_of_reduct(gp, possible) == true
    # Nothing outside the derivable atoms is ever true or undefined.
    assert possible <= set(gp.derivable)


@given(nonstratifiable_programs(), small_databases())
def test_wfm_true_atoms_survive_any_stable_reference(program, db):
    """True atoms are derivable however the undefined region resolves:
    ``A`` is anti-monotone, so every reference between ``true`` and
    ``possible`` rederives at least ``true``."""
    from repro.core.grounding import ground_program

    gp = ground_program(program, db)
    wf = well_founded_semantics(program, db, ground=gp)
    true = set(wf.true)
    possible = true | set(wf.undefined)
    # The two extreme references; anti-monotonicity gives containment
    # for anything in between.
    assert true <= _least_model_of_reduct(gp, possible)
    assert _least_model_of_reduct(gp, possible) <= _least_model_of_reduct(gp, true)


@given(random_programs(), small_databases())
def test_wfm_total_and_equals_stratified_when_stratifiable(program, db):
    """The classical theorem, now fuzzed: a stratifiable program's WFM
    is total and coincides with the perfect (stratified) model."""
    if not is_stratifiable(program):
        return
    wf = well_founded_semantics(program, db)
    strat = stratified_semantics(program, db)
    assert wf.is_total
    assert wf.true_idb() == strat.idb


@given(nonstratifiable_programs())
def test_strategy_is_never_stratifiable(program):
    """The strategy's contract: every draw has recursion through negation."""
    assert not is_stratifiable(program)


@given(random_programs(), small_databases())
def test_total_wfm_is_a_fixpoint_of_theta(program, db):
    """A *total* well-founded model is a stable model, and stable models
    are supported — i.e. genuine fixpoints of Theta.

    (The converse containments do NOT hold: Theta-fixpoints are supported
    models, which may include self-supporting atoms the WFS calls false,
    e.g. ``S(x) :- S(x)`` with ``S = {1}``.  The theorem tested here is
    the correct bridge between the two notions.)
    """
    from repro.core.grounding import ground_program

    gp = ground_program(program, db)
    wf = well_founded_semantics(program, db, ground=gp)
    if wf.is_total:
        assert gp.is_fixpoint(set(wf.true))
