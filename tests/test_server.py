"""Tests for the live view server: service, protocol, WAL replay, TCP.

The crash/replay tests are the durability contract in miniature: after
every acknowledged commit, killing the writer tasks without a graceful
close (so no final snapshot is cut) and restarting from the state
directory must reproduce the pre-crash sequence number, database and
maintained result *exactly* — on all three semantics, and with the
int-lookalike string values (``"01"``, ``" 7"``, ``"+5"``) whose
corruption by the old CSV coercion would have made replay diverge.
"""

import asyncio

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.materialize import ChangeSet, Delta
from repro.server import ViewServer
from repro.server.net import Client, ServerError, TcpFrontend
from repro.server.protocol import (
    ProtocolError,
    decode_changeset,
    decode_database,
    decode_delta,
    encode_changeset,
    encode_delta,
)
from repro.server.service import ProgramRejected, UnknownViewError

TC_PROGRAM = """
    TC(X, Y) :- E(X, Y).
    TC(X, Y) :- E(X, Z), TC(Z, Y).
"""

TC_NOTC_PROGRAM = TC_PROGRAM + "    NOTC(X, Y) :- !TC(X, Y).\n"

WIN_MOVE_PROGRAM = "W(X) :- E(X, Y), !W(Y).\n"


def _edges(*pairs):
    universe = {v for pair in pairs for v in pair}
    return Database(universe, [Relation("E", 2, list(pairs))])


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol encode/decode
# ----------------------------------------------------------------------


class TestProtocol:
    def test_delta_roundtrip(self):
        delta = Delta(
            inserts={"E": [(1, "01"), ("", -2)]}, deletes={"V": [(" 7",)]}
        )
        assert decode_delta(encode_delta(delta)) == delta

    def test_changeset_roundtrip(self):
        changeset = ChangeSet(
            inserted={"T": {(1,), ("+5",)}}, deleted={"E": {(1, 2)}}
        )
        assert decode_changeset(encode_changeset(changeset)) == changeset

    def test_database_roundtrip_carries_universe(self):
        db = Database({1, 2, 3, "x"}, [Relation("E", 2, [(1, 2)])])
        obj = {
            "relations": {"E": [[1, 2]]},
            "arities": {"E": 2},
            "universe": [1, 2, 3, "x"],
        }
        back = decode_database(obj)
        assert back["E"] == db["E"]
        assert back.universe == db.universe

    def test_bool_values_rejected(self):
        with pytest.raises(ProtocolError):
            decode_delta({"inserts": {"E": [[True, 1]]}, "deletes": {}})

    def test_float_values_rejected(self):
        with pytest.raises(ProtocolError):
            decode_delta({"inserts": {"E": [[1.5, 1]]}, "deletes": {}})


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------


class TestViewServer:
    def test_register_query_and_submit(self):
        async def scenario():
            service = ViewServer()
            info = service.register("tc", TC_PROGRAM, _edges((1, 2), (2, 3)))
            assert info.idb == {"TC": 2} and not info.durable
            seq, rel = service.query("tc", "TC")
            assert seq == 0 and (1, 3) in set(rel.tuples)
            seq, changeset = await service.submit(
                "tc", Delta(inserts={"E": [(3, 4)]})
            )
            assert seq == 1
            assert (1, 4) in changeset.inserted["TC"]
            _, edb = service.query("tc", "E")
            assert (3, 4) in set(edb.tuples)
            await service.close()

        _run(scenario())

    def test_unknown_view_and_duplicate_registration(self):
        async def scenario():
            service = ViewServer()
            with pytest.raises(UnknownViewError):
                service.query("nope", "TC")
            service.register("v", TC_PROGRAM, _edges((1, 2)))
            with pytest.raises(ValueError):
                service.register("v", TC_PROGRAM, _edges((1, 2)))
            with pytest.raises(ValueError):
                service.register(
                    "w", TC_PROGRAM, _edges((1, 2)), semantics="magic"
                )
            await service.close()

        _run(scenario())

    def test_tick_folds_concurrent_submits_into_one_commit(self):
        async def scenario():
            service = ViewServer(tick=0.05)
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            acks = await asyncio.gather(
                *(
                    service.submit("tc", Delta(inserts={"E": [(10 + i, 11 + i)]}))
                    for i in range(4)
                )
            )
            seqs = {seq for seq, _ in acks}
            changesets = {cs for _, cs in acks}
            # One batch: every submitter rode the same commit and got the
            # batch's net changeset.
            assert seqs == {1} and len(changesets) == 1
            stats = service.stats("tc")
            assert stats["submitted"] == 4 and stats["commits"] == 1
            await service.close()

        _run(scenario())

    def test_churning_batch_commits_nothing(self):
        async def scenario():
            service = ViewServer()
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            seq, changeset = await service.submit("tc", Delta.empty())
            assert seq == 0 and changeset.is_empty()
            assert service.stats("tc")["commits"] == 0
            await service.close()

        _run(scenario())

    def test_stats_surfaces_kernel_and_cardinalities(self):
        async def scenario():
            from repro.db import kernel

            service = ViewServer()
            service.register("tc", TC_PROGRAM, _edges((1, 2), (2, 3)))
            stats = service.stats("tc")
            assert stats["kernel"]["backend"] == kernel.backend()
            # The intern-table size is a peek, never a forcing read:
            # None until something touches the kernel, an int after.
            assert stats["kernel"]["interned_constants"] is None or isinstance(
                stats["kernel"]["interned_constants"], int
            )
            cards = stats["cardinalities"]
            assert cards["edb"] == {"E": 2}
            assert cards["idb"] == {"TC": 3}

            await service.submit("tc", Delta(inserts={"E": [(3, 4)]}))
            cards = service.stats("tc")["cardinalities"]
            assert cards["edb"] == {"E": 3}
            assert cards["idb"] == {"TC": 6}

            # Forcing the symbol table makes the size observable — and
            # it covers at least the live universe {1, 2, 3, 4}.
            service.pin("tc").db.symbols()
            size = service.stats("tc")["kernel"]["interned_constants"]
            assert isinstance(size, int) and size >= 4
            await service.close()

        _run(scenario())

    def test_bad_delta_fails_its_submitter_alone(self):
        async def scenario():
            service = ViewServer()
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            with pytest.raises((ValueError, KeyError)):
                await service.submit("tc", Delta(inserts={"E": [(1, 2, 3)]}))
            with pytest.raises((ValueError, KeyError)):
                await service.submit("tc", Delta(inserts={"TC": [(9, 9)]}))
            # The view is untouched and still accepts good deltas.
            seq, _ = await service.submit("tc", Delta(inserts={"E": [(2, 3)]}))
            assert seq == 1
            await service.close()

        _run(scenario())

    def test_subscribers_stream_committed_changesets(self):
        async def scenario():
            service = ViewServer()
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            sub = service.subscribe("tc")
            await service.submit("tc", Delta(inserts={"E": [(2, 3)]}))
            await service.submit("tc", Delta(deletes={"E": [(2, 3)]}))
            seen = []
            async for seq, changeset in sub:
                seen.append((seq, changeset))
                if len(seen) == 2:
                    break
            assert [s for s, _ in seen] == [1, 2]
            assert (2, 3) in seen[0][1].inserted["E"]
            assert (2, 3) in seen[1][1].deleted["E"]
            service.unsubscribe(sub)
            assert service.stats("tc")["subscribers"] == 0
            await service.close()

        _run(scenario())

    def test_pin_is_snapshot_consistent_across_commits(self):
        async def scenario():
            service = ViewServer()
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            pinned = service.pin("tc")
            await service.submit("tc", Delta(inserts={"E": [(2, 3)]}))
            # The pin still shows the pre-commit world, internally
            # consistent; the live view moved on.
            assert pinned.seq == 0
            assert (2, 3) not in set(pinned.db["E"].tuples)
            assert (1, 3) not in set(pinned.result.idb["TC"].tuples)
            assert service.pin("tc").seq == 1
            await service.close()

        _run(scenario())

    def test_undefined_partition_queries(self):
        async def scenario():
            service = ViewServer()
            service.register(
                "game",
                WIN_MOVE_PROGRAM,
                _edges((1, 2), (2, 3), (3, 4), (4, 4)),
                semantics="wellfounded",
            )
            _, undef = service.query("game", "W", undefined=True)
            assert (4, 4) in set(
                service.query("game", "E")[1].tuples
            ) and (4,) in set(undef.tuples)
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            with pytest.raises(ValueError):
                service.query("tc", "TC", undefined=True)
            await service.close()

        _run(scenario())


# ----------------------------------------------------------------------
# Durability: crash without a final snapshot, recover by replay
# ----------------------------------------------------------------------

_DELTAS = [
    Delta(inserts={"E": [(4, 1)]}),
    # Int-lookalike strings and a genuine int sharing relations: the
    # shapes whose corruption would make replay diverge.
    Delta(inserts={"E": [("01", " 7"), (" 7", 2)]}),
    Delta(deletes={"E": [(2, 3)]}),
    Delta(inserts={"E": [(5, "+5"), ("+5", "01")]}),
    Delta(deletes={"E": [(4, 1)]}),
]


def _result_value(view):
    if view.semantics == "wellfounded":
        return (dict(view.result.true_idb()), dict(view.result.undefined_idb()))
    return dict(view.result.idb)


@pytest.mark.parametrize(
    "semantics,program,carrier",
    [
        ("stratified", TC_NOTC_PROGRAM, "NOTC"),
        ("inflationary", TC_PROGRAM, None),
        ("wellfounded", WIN_MOVE_PROGRAM, None),
    ],
)
def test_crash_then_replay_recovers_exactly(tmp_path, semantics, program, carrier):
    async def scenario():
        # snapshot_every=3 with five commits: recovery crosses a
        # mid-history snapshot AND a WAL tail.
        service = ViewServer(state_dir=tmp_path, tick=0.0, snapshot_every=3)
        await service.start()
        service.register(
            "v",
            program,
            _edges((1, 2), (2, 3), (3, 4)),
            semantics=semantics,
            carrier=carrier,
        )
        for delta in _DELTAS:
            await service.submit("v", delta)
        state = service._views["v"]
        pre = (state.seq, state.view.db, _result_value(state.view))
        assert state.log.snapshot_seq == 3  # a mid-history snapshot exists

        # Crash: cancel the writers, cut no final snapshot.
        for viewstate in service._views.values():
            viewstate.task.cancel()
        del service

        restarted = ViewServer(state_dir=tmp_path, tick=0.0, snapshot_every=3)
        recovered = await restarted.start()
        assert [info.name for info in recovered] == ["v"]
        assert recovered[0].recovered and recovered[0].semantics == semantics
        state2 = restarted._views["v"]
        assert (state2.seq, state2.view.db, _result_value(state2.view)) == pre

        # The recovered view keeps serving and the log keeps counting.
        seq, _ = await restarted.submit("v", Delta(inserts={"E": [(99, 1)]}))
        assert seq == pre[0] + 1
        await restarted.close()

    _run(scenario())


def test_graceful_close_cuts_a_final_snapshot(tmp_path):
    async def scenario():
        service = ViewServer(state_dir=tmp_path, tick=0.0, snapshot_every=100)
        service.register("v", TC_PROGRAM, _edges((1, 2)))
        await service.submit("v", Delta(inserts={"E": [(2, 3)]}))
        await service.close()
        # After close, recovery starts at the final snapshot: no WAL
        # entries remain to replay.
        restarted = ViewServer(state_dir=tmp_path)
        (info,) = await restarted.start()
        assert info.seq == 1
        assert restarted._views["v"].log.snapshot_seq == 1
        assert restarted.stats("v")["snapshot_seq"] == 1
        await restarted.close()

    _run(scenario())


def test_nondurable_views_leave_no_state(tmp_path):
    async def scenario():
        service = ViewServer(state_dir=tmp_path)
        info = service.register(
            "scratch", TC_PROGRAM, _edges((1, 2)), durable=False
        )
        assert not info.durable
        await service.submit("scratch", Delta(inserts={"E": [(2, 3)]}))
        await service.close()
        assert list(tmp_path.iterdir()) == []

    _run(scenario())


# ----------------------------------------------------------------------
# TCP front end
# ----------------------------------------------------------------------


class TestTcpFrontend:
    def test_end_to_end(self):
        async def scenario():
            service = ViewServer()
            frontend = TcpFrontend(service)
            host, port = await frontend.start()
            client = await Client.connect(host, port)
            assert (await client.request("ping"))["pong"]

            ack = await client.register(
                "tc",
                TC_PROGRAM,
                db={"relations": {"E": [[1, 2], [2, 3]]}, "arities": {"E": 2}},
                durable=False,
            )
            assert ack["idb"] == {"TC": 2}
            assert (await client.request("views"))["views"] == ["tc"]

            watcher = await Client.connect(host, port)
            events = await watcher.subscribe("tc")

            ack = await client.delta("tc", inserts={"E": [[3, "01"]]})
            assert ack["seq"] == 1
            queried = await client.query("tc", "TC")
            assert [1, "01"] in queried["tuples"]

            seq, changeset = await events.__anext__()
            assert seq == 1 and (3, "01") in changeset.inserted["E"]
            await watcher.close()

            info = await client.request("info", view="tc")
            assert info["seq"] == 1 and not info["durable"]
            stats = await client.request("stats", view="tc")
            assert stats["stats"]["commits"] == 1

            with pytest.raises(ServerError, match="no view named"):
                await client.query("nope", "TC")
            with pytest.raises(ServerError, match="unknown op"):
                await client.request("frobnicate")

            await client.request("shutdown")
            await client.close()
            await frontend.wait_stopped()

        _run(scenario())

    def test_malformed_requests_get_error_responses(self):
        async def scenario():
            service = ViewServer()
            frontend = TcpFrontend(service)
            host, port = await frontend.start()
            client = await Client.connect(host, port)
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            import json

            response = json.loads(await client._reader.readline())
            assert not response["ok"] and "JSON" in response["error"]
            client._writer.write(b'["a","list"]\n')
            await client._writer.drain()
            response = json.loads(await client._reader.readline())
            assert not response["ok"]
            # The connection survived both: a normal request still works.
            assert (await client.request("ping"))["pong"]
            await client.close()
            await frontend.close()

        _run(scenario())

    def test_subscriber_disconnect_releases_subscription(self):
        async def scenario():
            service = ViewServer()
            frontend = TcpFrontend(service)
            host, port = await frontend.start()
            service.register("tc", TC_PROGRAM, _edges((1, 2)))
            watcher = await Client.connect(host, port)
            await watcher.subscribe("tc")
            assert service.stats("tc")["subscribers"] == 1
            await watcher.close()
            for _ in range(50):
                if service.stats("tc")["subscribers"] == 0:
                    break
                await asyncio.sleep(0.01)
            assert service.stats("tc")["subscribers"] == 0
            await frontend.close()

        _run(scenario())


# ----------------------------------------------------------------------
# Static analysis at the service and protocol layers
# ----------------------------------------------------------------------


class TestServerAnalysis:
    def test_register_rejects_error_level_program(self):
        async def run():
            server = ViewServer()
            with pytest.raises(ProgramRejected) as err:
                server.register(
                    "bad", "P(X) :- Q(X). P(X, Y) :- Q(Y).", _edges((1, 2))
                )
            report = err.value.report
            assert "A001" in report.codes()
            assert report.errors > 0
            assert server.views() == []
            await server.close()

        _run(run())

    def test_register_rejects_missing_edb(self):
        async def run():
            server = ViewServer()
            db = Database([1, 2])  # no E relation
            with pytest.raises(ProgramRejected) as err:
                server.register("tc", TC_PROGRAM, db, carrier="TC")
            assert "V001" in err.value.report.codes()
            await server.close()

        _run(run())

    def test_register_accepts_warnings_and_caches_report(self):
        async def run():
            server = ViewServer()
            server.register(
                "wm", WIN_MOVE_PROGRAM, _edges((1, 2)), semantics="wellfounded"
            )
            report = server.lint("wm")
            assert {"S001", "S002"} <= set(report.codes())
            assert report.errors == 0
            assert server.lint("wm") is report  # cached, not recomputed
            await server.close()

        _run(run())

    def test_stats_carries_analysis_block(self):
        async def run():
            server = ViewServer()
            server.register("tc", TC_NOTC_PROGRAM, _edges((1, 2)), carrier="NOTC")
            analysis = server.stats("tc")["analysis"]
            assert analysis["class"] == "stratified"
            assert analysis["strata"] == 2
            assert analysis["errors"] == 0
            assert analysis["negative_cycle_predicates"] == []
            assert isinstance(analysis["codes"], list)
            await server.close()

        _run(run())

    def test_tcp_register_rejection_carries_diagnostics(self):
        async def run():
            server = ViewServer()
            frontend = TcpFrontend(server)
            host, port = await frontend.start()
            client = await Client.connect(host, port)
            with pytest.raises(ServerError) as err:
                await client.register(
                    "bad",
                    "P(X) :- Q(X). P(X, Y) :- Q(Y).",
                    db={"relations": {}, "arities": {}},
                )
            assert any(d["code"] == "A001" for d in err.value.diagnostics)
            assert {d["severity"] for d in err.value.diagnostics} <= {
                "error", "warning", "info"
            }
            await client.close()
            await frontend.close()

        _run(run())

    def test_tcp_lint_verb_returns_schema_stable_report(self):
        async def run():
            server = ViewServer()
            frontend = TcpFrontend(server)
            host, port = await frontend.start()
            client = await Client.connect(host, port)
            await client.register(
                "wm",
                WIN_MOVE_PROGRAM,
                db={"relations": {"E": [[1, 2], [2, 1]]}, "arities": {"E": 2}},
                semantics="wellfounded",
            )
            report = await client.lint("wm")
            assert set(report) == {"version", "summary", "diagnostics"}
            assert report["summary"]["class"] == "general"
            assert {d["code"] for d in report["diagnostics"]} == {"S001", "S002"}
            stats = (await client.request("stats", view="wm"))["stats"]
            assert stats["analysis"]["class"] == "general"
            with pytest.raises(ServerError):
                await client.lint("nope")
            await client.close()
            await frontend.close()

        _run(run())
