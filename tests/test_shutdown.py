"""Graceful shutdown of the real server process.

SIGTERM is how supervisors stop the server; the handler must route into
the same close path as the ``shutdown`` verb, so the final snapshot is
cut and a restart recovers without replaying the whole WAL.  This runs
the actual ``repro.cli serve`` entry point in a subprocess — loop signal
handlers cannot be exercised in-process.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="POSIX signals required",
)

_SERVING = re.compile(r"serving on ([\d.]+):(\d+)")


def _start_server(tmp_path, workers=0):
    data = tmp_path / "db"
    data.mkdir()
    (data / "E.csv").write_text("0,1\n1,2\n2,3\n")
    (tmp_path / "tc.dl").write_text(
        "T(X,Y) :- E(X,Y).\nT(X,Z) :- E(X,Y), T(Y,Z).\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_repo_src()), env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            str(tmp_path / "tc.dl"),
            "--db", str(data),
            "--state", str(tmp_path / "state"),
            "--name", "tc",
            "--port", "0",
            "--snapshot-every", "1000",  # only the final snapshot counts
        ]
        + (["--workers", str(workers)] if workers else []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines = []
    for line in proc.stdout:
        lines.append(line)
        m = _SERVING.search(line)
        if m:
            return proc, m.group(1), int(m.group(2))
    proc.wait()
    raise AssertionError("server never announced its port:\n" + "".join(lines))


def _repo_src():
    return os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


async def _submit(host, port, inserts):
    from repro.server.net import Client

    client = await Client.connect(host, port)
    try:
        return await client.delta("tc", inserts=inserts)
    finally:
        await client.close()


@pytest.mark.parametrize("workers", [0, 2])
def test_sigterm_cuts_final_snapshot_and_recovers(tmp_path, workers):
    proc, host, port = _start_server(tmp_path, workers=workers)
    try:
        asyncio.run(_submit(host, port, {"E": [[3, 4]]}))
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "received SIGTERM" in out
    # graceful close cut a final snapshot at the last committed sequence
    meta = json.loads((tmp_path / "state" / "tc" / "meta.json").read_text())
    assert meta["snapshot_seq"] == 1, out
    # and nothing is left to replay: the WAL behind the snapshot was pruned
    wal = tmp_path / "state" / "tc" / "wal"
    assert [p for p in wal.iterdir() if not p.name.startswith(".")] == []
