"""Tests for the statistics feedback loop and adaptive re-planning.

The contract under test:

* the batch executor records relation cardinalities and join
  selectivities into the store's :class:`Statistics` — but never for
  synthetic predicates (deltas, maintenance aliases), and never when a
  caller passes ``stats=None``;
* :func:`compile_rule` with observed IDB sizes orders joins from those
  sizes instead of the "assume large" placeholder;
* the adaptive wrappers re-plan a rule mid-fixpoint exactly when the
  observed cardinalities diverge beyond the factor, and the re-planned
  variants coexist in the store under bucketed keys;
* engines produce identical results with and without adaptivity
  (covered by the equivalence suite in ``test_planner.py``; spot-checked
  here on the workload the static planner misorders).
"""

from __future__ import annotations

from repro import Database, Relation, parse_program
from repro.core.fixpoint import idb_equal
from repro.core.operator import as_interpretation, empty_idb, theta_legacy
from repro.core.planning import (
    MIN_REPLAN_SIZE,
    PlanStore,
    Statistics,
    cardinality_bucket,
    compile_rule,
    diverged,
    execute_plan,
)
from repro.core.semantics import naive_least_fixpoint, seminaive_least_fixpoint


def _hub_db(n_big=64, hubs=8):
    big = [(hubs + i, i % hubs) for i in range(n_big)]
    sel = [(0, 1), (1, 2)]
    return Database(
        set(range(hubs + n_big)),
        [Relation("Big", 2, big), Relation("SEL", 2, sel)],
        check=False,
    )


# ----------------------------------------------------------------------
# Statistics object
# ----------------------------------------------------------------------


def test_cardinality_buckets_are_coarse_and_monotone():
    assert cardinality_bucket(0) == 0
    assert cardinality_bucket(1) == cardinality_bucket(3)
    assert cardinality_bucket(4) == cardinality_bucket(15)
    assert cardinality_bucket(3) < cardinality_bucket(4)
    sizes = [0, 1, 5, 17, 80, 1000, 10**6]
    buckets = [cardinality_bucket(s) for s in sizes]
    assert buckets == sorted(buckets)


def test_diverged_handles_unknown_small_and_both_directions():
    inf = float("inf")
    assert diverged(inf, MIN_REPLAN_SIZE)  # unknown vs real information
    assert not diverged(inf, MIN_REPLAN_SIZE - 1)  # too small to matter
    assert not diverged(3.0, 5)  # tiny either way
    assert diverged(10.0, 100)  # grew past the factor
    assert diverged(100.0, 10)  # shrank past the factor
    assert not diverged(100.0, 150)  # within the factor


def test_statistics_ignore_synthetic_predicates():
    stats = Statistics()
    stats.record_cardinality("E", 7)
    stats.record_cardinality("S__delta", 1)
    stats.record_cardinality("E@ins", 1)
    stats.record_join("E", (0,), 10, 3)
    stats.record_join("S__delta", (0,), 10, 3)
    assert stats.cardinality("E") == 7
    assert stats.cardinality("S__delta") is None
    assert stats.cardinality("E@ins") is None
    assert stats.avg_matches("E", (0,)) == 0.3
    assert stats.avg_matches("S__delta", (0,)) is None


def test_batch_executor_records_into_the_store_statistics():
    store = PlanStore()
    program = parse_program("Q(X, Y) :- Big(X, Z), SEL(Z, Y).", carrier="Q")
    db = _hub_db()
    plan = store.rule_plan(program.rules[0], db=db)
    execute_plan(plan, db, stats=store.statistics)
    assert store.statistics.cardinality("Big") == 64
    assert store.statistics.cardinality("SEL") == 2
    # SEL (known small) is scanned first; Big is the keyed probe whose
    # selectivity gets recorded.
    assert ("Big", (1,)) in store.statistics.join_keys()


def test_stats_none_records_nothing():
    store = PlanStore()
    program = parse_program("Q(X, Y) :- Big(X, Z), SEL(Z, Y).", carrier="Q")
    db = _hub_db()
    plan = store.rule_plan(program.rules[0], db=db)
    execute_plan(plan, db, stats=None)
    assert len(store.statistics) == 0


# ----------------------------------------------------------------------
# Observed sizes drive the join order
# ----------------------------------------------------------------------


def test_observed_idb_sizes_reorder_the_join():
    # SEL is an IDB predicate (not in the db): statically it estimates
    # "large" and Big (a known 64) goes first; with an observed size of
    # 2 the order flips to SEL-first.
    rule = parse_program("Q(X, Y) :- Big(X, Z), SEL(Z, Y).", carrier="Q").rules[0]
    big_only = Database(
        set(range(72)),
        [Relation("Big", 2, [(8 + i, i % 8) for i in range(64)])],
        check=False,
    )
    static = compile_rule(rule, db=big_only)
    assert static.steps[0].pred == "Big"
    observed = compile_rule(rule, db=big_only, idb_sizes={"SEL": 2})
    assert observed.steps[0].pred == "SEL"
    assert observed.est_cards == (("SEL", 2.0),)


# ----------------------------------------------------------------------
# Adaptive wrappers
# ----------------------------------------------------------------------


def test_adaptive_refresh_replans_on_divergence_and_buckets_coexist():
    store = PlanStore()
    program = parse_program(
        """
        SEL(X, Y) :- Seed(X, Y).
        Q(X, Y) :- Big(X, Z), SEL(Z, Y).
        """,
        carrier="Q",
    )
    hubs, n_big = 8, 64
    db = Database(
        set(range(hubs + n_big)),
        [
            Relation("Big", 2, [(hubs + i, i % hubs) for i in range(n_big)]),
            Relation("Seed", 2, [(i, i + 1) for i in range(hubs - 1)]),
        ],
        check=False,
    )
    adaptive = store.adaptive_program_plan(program, db)
    q_plan = [p for p in adaptive.plans if p.head_pred == "Q"][0]
    assert q_plan.steps[0].pred == "Big"  # static guess: SEL assumed large

    # A big observed SEL (>= the replan floor) diverges from "unknown"
    # but still leaves SEL second; a small observed SEL flips the order.
    interp = as_interpretation(
        program,
        db,
        {
            "SEL": Relation("SEL", 2, [(i, j) for i in range(20) for j in range(20)]),
            "Q": Relation("Q", 2, []),
        },
    )
    adaptive.consequences(interp)
    assert adaptive.replans >= 1
    q_plan = [p for p in adaptive.plans if p.head_pred == "Q"][0]
    assert q_plan.steps[0].pred == "Big"
    assert q_plan.est_cards == (("SEL", 400.0),)

    small = as_interpretation(
        program,
        db,
        {
            "SEL": Relation("SEL", 2, [(i, i + 1) for i in range(MIN_REPLAN_SIZE)]),
            "Q": Relation("Q", 2, []),
        },
    )
    adaptive.consequences(small)
    q_plan = [p for p in adaptive.plans if p.head_pred == "Q"][0]
    assert q_plan.steps[0].pred == "SEL"

    # Both re-planned variants sit in the store under bucketed keys, so
    # revisiting either growth stage is a cache hit, not a recompile.
    kinds = [key[0] for key in store._plans]
    assert kinds.count("rule+stats") >= 2
    misses = store.misses
    adaptive.consequences(small)
    assert store.misses == misses  # same bucket: no recompile


def test_single_atom_rules_never_replan():
    store = PlanStore()
    program = parse_program("T(X) :- E(Y, X), !T(Y).")
    db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (2, 3)])])
    adaptive = store.adaptive_program_plan(program, db)
    assert all(not p.est_cards for p in adaptive.plans)
    big_t = as_interpretation(
        program, db, {"T": Relation("T", 1, [(i,) for i in (1, 2, 3)])}
    )
    adaptive.consequences(big_t)
    assert adaptive.replans == 0


# ----------------------------------------------------------------------
# End to end: adaptive engines match the legacy iteration on the
# workload whose static plan is misordered
# ----------------------------------------------------------------------


def test_adaptive_engines_match_legacy_on_misplanned_workload():
    program = parse_program(
        """
        SEL(X, Y) :- Seed(X, Y).
        SEL(X, Y) :- Seed(X, Z), SEL(Z, Y).
        Q(X, Y) :- Big(X, Z), SEL(Z, Y).
        """,
        carrier="Q",
    )
    hubs, n_big = 4, 40
    db = Database(
        set(range(hubs + n_big + 24)),
        [
            Relation("Big", 2, [(hubs + i, i % hubs) for i in range(n_big)]),
            Relation(
                "Seed",
                2,
                [(0, hubs + n_big)]
                + [(hubs + n_big + j, hubs + n_big + j + 1) for j in range(20)],
            ),
        ],
        check=False,
    )

    def legacy_lfp():
        current = empty_idb(program)
        while True:
            nxt = theta_legacy(program, db, current)
            if idb_equal(nxt, current):
                return current
            current = nxt

    expected = legacy_lfp()
    assert idb_equal(naive_least_fixpoint(program, db).idb, expected)
    assert idb_equal(seminaive_least_fixpoint(program, db).idb, expected)


# ----------------------------------------------------------------------
# Per-stratum planning: known lower-strata sizes are facts, not
# discoveries — compiled in up front, exempt from divergence re-plans
# ----------------------------------------------------------------------


def test_known_sizes_pin_predicates_against_divergence():
    """A predicate passed as ``known_sizes`` is compiled in from the
    start and never triggers a re-plan, however its observed size moves;
    an unknown predicate in the same rule still does (the control)."""
    store = PlanStore()
    rule = parse_program("Q(X, Y) :- L(X, Z), M(Z, Y).", carrier="Q").rules[0]
    db = Database(set(range(64)), [], check=False)  # neither pred in the db

    pinned = store.adaptive_rule_plans([rule], db=db, known_sizes={"L": 40, "M": 48})
    assert dict(pinned.plans[0].est_cards) == {"L": 40.0, "M": 48.0}
    drifted = Database(
        set(range(64)),
        [
            # Both observed at 63: within the divergence factor of the
            # pinned 40/48 estimates, far above the replan floor.
            Relation("L", 2, [(i, i + 1) for i in range(63)]),
            Relation("M", 2, [(0, i) for i in range(63)]),
        ],
        check=False,
    )
    pinned.refresh(drifted)
    assert pinned.replans == 0  # both preds are facts: nothing is stale

    # Without the pin, M compiles to the "unknown, assume large"
    # placeholder, and *any* meaningful observation diverges from that.
    control = store.adaptive_rule_plans([rule], db=db, known_sizes={"L": 40})
    assert dict(control.plans[0].est_cards)["M"] == float("inf")
    control.refresh(drifted)
    assert control.replans == 1


def test_stratified_plans_upper_strata_against_known_lower_sizes(monkeypatch):
    """E9 regression (ISSUE 5): evaluating the stratified witnesses, no
    re-plan ever fires on a second-stratum rule — lower strata enter the
    planner as ``known_sizes`` facts instead of being rediscovered via
    adaptive divergence."""
    from repro.core.planning.store import PlanStore as StoreCls
    from repro.core.semantics import stratified_semantics, stratify
    from repro.graphs import generators as gg
    from repro.graphs.encode import graph_to_database
    from repro.queries import distance_program, tc_complement_stratified

    created = []
    orig = StoreCls.adaptive_rule_plans

    def spy(self, rules, **kwargs):
        wrapper = orig(self, rules, **kwargs)
        created.append(wrapper)
        return wrapper

    monkeypatch.setattr(StoreCls, "adaptive_rule_plans", spy)

    recursive_upper = parse_program(
        """
        TC(X, Y) :- E(X, Y).
        TC(X, Y) :- E(X, Z), TC(Z, Y).
        V(X, Y) :- TC(X, Y), !TC(Y, X).
        V(X, Y) :- V(X, Z), TC(Z, Y).
        """,
        carrier="V",
    )
    db = graph_to_database(gg.path(10))
    for program in (distance_program(), tc_complement_stratified(), recursive_upper):
        created.clear()
        strata = stratify(program)
        lower = set(strata[0])
        upper = set().union(*strata[1:])
        stratified_semantics(program, db)
        saw_upper = False
        for wrapper in created:
            heads = {plan.head_pred for plan in wrapper.plans}
            if not heads or not (heads & upper):
                continue
            saw_upper = True
            # The wrapper was handed every lower stratum's final size...
            assert lower <= set(wrapper.known_sizes)
            # ...and no divergence re-plan fired on the upper stratum.
            assert wrapper.replans == 0
        # distance/tc_complement have variant-free upper strata; the
        # recursive_upper program is the non-vacuous case.
        if program is recursive_upper:
            assert saw_upper


def test_seminaive_known_sizes_preserves_results():
    """``known_sizes`` is ordering advice only — valuations are identical."""
    program = parse_program(
        "S(X, Y) :- E(X, Y).  S(X, Y) :- E(X, Z), S(Z, Y)."
    )
    db = Database(
        {1, 2, 3, 4}, [Relation("E", 2, [(1, 2), (2, 3), (3, 4)])]
    )
    plain = seminaive_least_fixpoint(program, db)
    advised = seminaive_least_fixpoint(program, db, known_sizes={"E": 3})
    assert idb_equal(plain.idb, advised.idb)
