"""Tests for program/database validation and safety analysis."""

import pytest

from repro import Database, Relation, parse_program
from repro.core.validation import ValidationError, check_database, safety_report


def test_safety_report_flags_paper_rules():
    p = parse_program("T(Z) :- !Q(U), !T(W). Q(X) :- Q(X).")
    report = safety_report(p)
    assert not report.is_safe
    # The toggle rule has three unrestricted variables.
    (rule, vars_), = [v for v in report.violations]
    assert {v.name for v in vars_} == {"Z", "U", "W"}
    assert "unsafe" in str(report)


def test_safety_report_clean_program(tc_program):
    report = safety_report(tc_program)
    assert report.is_safe
    assert str(report) == "all rules are range-restricted"


def test_check_database_accepts_matching(pi1_program, path4_db):
    check_database(pi1_program, path4_db)  # should not raise


def test_check_database_missing_edb(pi1_program):
    with pytest.raises(ValidationError, match="missing EDB relation 'E'"):
        check_database(pi1_program, Database({1}, []))


def test_check_database_edb_arity_mismatch(pi1_program):
    db = Database({1}, [Relation("E", 3, [])])
    with pytest.raises(ValidationError, match="arity"):
        check_database(pi1_program, db)


def test_check_database_idb_arity_mismatch(pi1_program, path4_db):
    loaded = path4_db.with_relation(Relation("T", 2, []))
    with pytest.raises(ValidationError, match="IDB relation T"):
        check_database(pi1_program, loaded)
