"""Well-founded view maintenance equals from-scratch recomputation.

The central property of the PR-5 subsystem: after *any* sequence of EDB
deltas, a ``MaterializedView(semantics="wellfounded")``'s three-valued
model is extensionally equal to running the alternating fixpoint from
scratch on the mutated database — the **true**, **undefined** and
**false** partitions all agree — across insert-only, delete-only and
mixed sequences, the paper's win–move phenomenology (paths, even cycles,
odd cycles), random non-stratifiable programs, and batched/rolled-back
transactions.

The differential harness runs 200 Hypothesis examples per delta-polarity
class (the ISSUE 5 acceptance bar), overriding the profile's default.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Database, Relation
from repro.core.grounding import GroundingPatchError, LiveGroundProgram, ground_program
from repro.core.semantics import well_founded_semantics
from repro.graphs import generators as gg
from repro.graphs.encode import graph_to_database
from repro.materialize import Delta, MaterializedView
from repro.materialize.wellfounded_maint import undef_name
from repro.queries import pi1, win_move_program

from strategies import databases_and_deltas, nonstratifiable_programs

DEEP = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _atom_space(program, db):
    """Every ground IDB atom over the database's universe."""
    from itertools import product

    atoms = set()
    for pred in program.idb_predicates:
        for values in product(sorted(db.universe), repeat=program.arity(pred)):
            atoms.add((pred, values))
    return atoms


def _assert_partitions_equal(program, view):
    """All three partitions of the maintained model match a recompute."""
    reference = well_founded_semantics(program, view.db)
    result = view.result
    assert result.true == reference.true
    assert result.undefined == reference.undefined
    # The false partition is the complement over the shared atom space;
    # with identical universes and true/undefined sets it is forced, but
    # assert it explicitly — that is the contract under test.
    space = _atom_space(program, view.db)
    assert (space - result.true - result.undefined) == (
        space - reference.true - reference.undefined
    )


def _check_sequence(program, db, deltas):
    view = MaterializedView(program, db, semantics="wellfounded")
    for delta in deltas:
        before = view.result
        changeset = view.apply(delta)
        _assert_partitions_equal(program, view)
        # The changeset reports exactly the true/undefined moves.
        after = view.result
        for pred in program.idb_predicates:
            t_ins = {v for p, v in after.true - before.true if p == pred}
            t_del = {v for p, v in before.true - after.true if p == pred}
            u_ins = {v for p, v in after.undefined - before.undefined if p == pred}
            u_del = {v for p, v in before.undefined - after.undefined if p == pred}
            assert changeset.inserted.get(pred, frozenset()) == t_ins
            assert changeset.deleted.get(pred, frozenset()) == t_del
            assert changeset.inserted.get(undef_name(pred), frozenset()) == u_ins
            assert changeset.deleted.get(undef_name(pred), frozenset()) == u_del
    return view


# ----------------------------------------------------------------------
# Directed seeds: the paper's win–move phenomenology
# ----------------------------------------------------------------------


class TestWinMoveSeeds:
    def test_path_stays_total(self):
        """On L_6 the WFM is total; updates keep it maintained exactly."""
        view = _check_sequence(
            win_move_program(),
            graph_to_database(gg.path(6)),
            [
                Delta.insert("E", (3, 3)),   # self-loop on a winning node
                Delta.delete("E", (3, 3)),
                Delta.delete("E", (5, 6)),   # move the dead end: parity flips
                Delta.insert("E", (5, 6)),
            ],
        )
        assert view.recomputes == 0
        assert view.result.is_total

    def test_odd_cycle_all_undefined(self):
        """Closing an odd cycle drowns every position in undefinedness."""
        view = _check_sequence(
            win_move_program(),
            graph_to_database(gg.path(5)),
            [
                Delta.insert("E", (5, 1)),   # C_5: no fixpoint, all undefined
                Delta.delete("E", (3, 4)),   # break it: decided again
                Delta.insert("E", (3, 4)),
            ],
        )
        assert view.recomputes == 0

    def test_even_cycle_undefined_region(self):
        """An even cycle leaves its positions undefined (two fixpoints)."""
        cycle4 = [(1, 2), (2, 3), (3, 4), (4, 1)]
        db = Database({1, 2, 3, 4, 5, 6}, [Relation("E", 2, cycle4)])
        view = _check_sequence(
            win_move_program(),
            db,
            [
                Delta.insert("E", (1, 5)),   # escape hatch to an isolated node
                Delta.insert("E", (5, 6)),   # ...whose continuation dead-ends
                Delta.delete("E", (1, 2)),   # open the cycle
            ],
        )
        assert view.recomputes == 0

    def test_pi1_odd_cycle(self):
        """pi_1 (win–move over reversed edges) on C_3, mutated both ways."""
        _check_sequence(
            pi1(),
            graph_to_database(gg.cycle(3)),
            [
                Delta.delete("E", (1, 2)),
                Delta.insert("E", (1, 2)),
                Delta.insert("E", (2, 2)),
            ],
        )

    def test_universe_growth_falls_back(self):
        view = MaterializedView(
            win_move_program(), graph_to_database(gg.path(4)),
            semantics="wellfounded",
        )
        view.apply(Delta.insert("E", (4, 9)))  # 9 is a brand-new element
        assert view.recomputes == 1
        assert 9 in view.db.universe
        _assert_partitions_equal(win_move_program(), view)
        # Maintenance keeps working after the rebuild.
        view.apply(Delta.delete("E", (2, 3)))
        assert view.recomputes == 1
        _assert_partitions_equal(win_move_program(), view)

    def test_alternation_lengthens_and_shrinks(self):
        """Growing the path lengthens the alternation (the localized
        tail-recompute fallback); shrinking it trims stale layers."""
        program = win_move_program()
        db = graph_to_database(gg.path(8))
        view = MaterializedView(program, db, semantics="wellfounded")
        rounds_before = view.result.rounds
        # Chop the path in half: the dead end moves closer, fewer rounds.
        view.apply(Delta.delete("E", (4, 5)))
        assert view.result.rounds < rounds_before
        _assert_partitions_equal(program, view)
        # Restore: the alternation must lengthen again.
        view.apply(Delta.insert("E", (4, 5)))
        assert view.result.rounds == rounds_before
        assert view._wf.extensions >= 1
        _assert_partitions_equal(program, view)


# ----------------------------------------------------------------------
# The incremental grounder in isolation
# ----------------------------------------------------------------------


class TestLiveGroundProgram:
    def test_patch_matches_reground(self):
        program = pi1()
        db = graph_to_database(gg.path(4))
        live = LiveGroundProgram(program, db)
        for delta in [
            Delta.insert("E", (4, 1)),
            Delta.delete("E", (1, 2)),
            Delta(inserts={"E": [(1, 2), (2, 2)]}, deletes={"E": [(3, 4)]}),
        ]:
            changes = {
                name: (delta.inserts(name), delta.deletes(name))
                for name in delta.relations()
            }
            new_db = live.db.apply_delta(delta)
            added, removed = live.apply(new_db, changes)
            assert added.isdisjoint(removed)
            assert live.rules == frozenset(ground_program(program, new_db).rules)

    def test_universe_growth_rejected(self):
        program = pi1()
        db = graph_to_database(gg.path(3))
        live = LiveGroundProgram(program, db)
        delta = Delta.insert("E", (3, 7))
        with pytest.raises(GroundingPatchError):
            live.apply(db.apply_delta(delta), {"E": (delta.inserts("E"), frozenset())})

    def test_multiplicity_counted(self):
        """A ground rule backed by several EDB bindings only disappears
        when the *last* binding goes — the counting the patcher exists for."""
        from repro import parse_program

        program = parse_program("T(X) :- E(X, Z), !T(X).")  # Z occurs only in E
        db = Database({1, 2, 3}, [Relation("E", 2, [(1, 2), (1, 3)])])
        live = LiveGroundProgram(program, db)
        before = live.rules
        # Dropping one of the two bindings keeps the ground rule alive.
        d1 = Delta.delete("E", (1, 2))
        added, removed = live.apply(
            db.apply_delta(d1), {"E": (frozenset(), d1.deletes("E"))}
        )
        assert not added and not removed
        assert live.rules == before
        # Dropping the second binding removes it.
        d2 = Delta.delete("E", (1, 3))
        added, removed = live.apply(
            live.db.apply_delta(d2), {"E": (frozenset(), d2.deletes("E"))}
        )
        assert not added
        assert ("T", (1,)) in {r.head for r in removed}


# ----------------------------------------------------------------------
# The Hypothesis differential harness (ISSUE 5: >=200 examples per class)
# ----------------------------------------------------------------------


def _property_body(program, db, deltas):
    view = MaterializedView(program, db, semantics="wellfounded")
    for delta in deltas:
        view.apply(delta)
        reference = well_founded_semantics(program, view.db)
        assert view.result.true == reference.true
        assert view.result.undefined == reference.undefined


class TestMaintenanceEqualsRecompute:
    @DEEP
    @given(program=nonstratifiable_programs(), dbd=databases_and_deltas())
    def test_mixed(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas)

    @DEEP
    @given(
        program=nonstratifiable_programs(),
        dbd=databases_and_deltas(insert_only=True),
    )
    def test_insert_only(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas)

    @DEEP
    @given(
        program=nonstratifiable_programs(),
        dbd=databases_and_deltas(delete_only=True),
    )
    def test_delete_only(self, program, dbd):
        db, deltas = dbd
        _property_body(program, db, deltas)

    @DEEP
    @given(
        program=nonstratifiable_programs(),
        dbd=databases_and_deltas(grow=False),
    )
    def test_batched_equals_recompute(self, program, dbd):
        """One apply_many pass over the whole sequence is still exact."""
        db, deltas = dbd
        view = MaterializedView(program, db, semantics="wellfounded")
        view.apply_many(deltas)
        reference = well_founded_semantics(program, view.db)
        assert view.result.true == reference.true
        assert view.result.undefined == reference.undefined
