"""Tests for the CNF workload generators."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.cnf_gen import (
    CNFInstance,
    fixed_instance_small,
    parity_chain,
    pigeonhole,
    random_kcnf,
    unique_model_instance,
    unsatisfiable_instance,
)


def test_fixed_instance_has_two_models():
    inst = fixed_instance_small()
    assert inst.count_models() == 2


def test_unknown_variable_rejected():
    with pytest.raises(ValueError):
        CNFInstance(("x1",), ((("zzz", True),),))


def test_unsatisfiable_instance():
    inst = unsatisfiable_instance()
    assert not inst.is_satisfiable()
    assert inst.count_models() == 0


def test_random_kcnf_shape_and_determinism():
    a = random_kcnf(5, 9, 3, seed=4)
    b = random_kcnf(5, 9, 3, seed=4)
    assert a == b
    assert a.num_variables == 5 and a.num_clauses == 9
    assert all(len(c) == 3 for c in a.clauses)
    assert all(len({v for v, _ in c}) == 3 for c in a.clauses)


def test_random_kcnf_width_check():
    with pytest.raises(ValueError):
        random_kcnf(2, 1, 3, seed=0)


@given(st.integers(2, 6), st.integers(0, 5))
def test_unique_model_instances_have_one_model(n, seed):
    inst = unique_model_instance(n, seed=seed)
    assert inst.count_models() == 1


def test_unique_model_not_all_units():
    inst = unique_model_instance(4, seed=0)
    assert any(len(c) > 1 for c in inst.clauses)


@given(st.integers(1, 5), st.booleans())
def test_parity_chain_model_count(n, parity):
    inst = parity_chain(n, parity)
    assert inst.count_models() == 2 ** (n - 1) if n > 1 else inst.count_models() in (0, 1)


def test_parity_chain_models_have_right_parity():
    inst = parity_chain(3, True)
    for assignment in inst.satisfying_assignments():
        assert sum(assignment.values()) % 2 == 1


def test_pigeonhole_unsat_small():
    assert not pigeonhole(2).is_satisfiable()


def test_is_satisfied_by():
    inst = fixed_instance_small()
    assert inst.is_satisfied_by({"x1": True, "x2": False, "x3": True})
    assert not inst.is_satisfied_by({"x1": False, "x2": False, "x3": False})
